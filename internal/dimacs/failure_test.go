package dimacs

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"graphct/internal/gen"
	"graphct/internal/graph"
)

// failWriter fails after n bytes, exercising the writers' error paths.
type failWriter struct {
	n int
}

var errDiskFull = errors.New("synthetic disk full")

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errDiskFull
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, errDiskFull
	}
	w.n -= len(p)
	return len(p), nil
}

// failReader fails after its prefix is consumed.
type failReader struct {
	data []byte
}

func (r *failReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, errDiskFull
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

func TestWriteBinaryFailurePropagates(t *testing.T) {
	g := gen.ErdosRenyi(50, 150, 1)
	// Fail at several offsets to hit header, rowPtr and adjacency writes.
	for _, budget := range []int{0, 2, 10, 100, 600} {
		w := &failWriter{n: budget}
		if err := WriteBinary(w, g); !errors.Is(err, errDiskFull) {
			t.Fatalf("budget %d: err = %v, want disk full", budget, err)
		}
	}
}

func TestWriteBinaryWeightedFailure(t *testing.T) {
	g, _ := graph.FromWeightedEdges(30, wedges(29), graph.Options{})
	for _, budget := range []int{300, 400} {
		if err := WriteBinary(&failWriter{n: budget}, g); !errors.Is(err, errDiskFull) {
			t.Fatalf("budget %d: err = %v", budget, err)
		}
	}
}

func wedges(n int) []graph.WeightedEdge {
	out := make([]graph.WeightedEdge, n)
	for i := range out {
		out[i] = graph.WeightedEdge{U: int32(i), V: int32(i + 1), W: int32(i)}
	}
	return out
}

func TestWriteDIMACSFailure(t *testing.T) {
	g := gen.ErdosRenyi(40, 120, 2)
	if err := Write(&failWriter{n: 5}, g); !errors.Is(err, errDiskFull) {
		t.Fatalf("err = %v", err)
	}
	if err := Write(&failWriter{n: 60}, g); !errors.Is(err, errDiskFull) {
		t.Fatalf("mid-stream err = %v", err)
	}
}

func TestWriteEdgeListFailure(t *testing.T) {
	g := gen.ErdosRenyi(40, 120, 2)
	if err := WriteEdgeList(&failWriter{n: 50}, g); !errors.Is(err, errDiskFull) {
		t.Fatalf("err = %v", err)
	}
}

func TestParseReaderFailure(t *testing.T) {
	if _, err := Parse(&failReader{data: []byte("p edge 2 1\n")}, ParseOptions{}); !errors.Is(err, errDiskFull) {
		t.Fatalf("dimacs err = %v", err)
	}
	if _, err := ParseEdgeList(&failReader{data: []byte("0 1\n")}, EdgeListOptions{}); !errors.Is(err, errDiskFull) {
		t.Fatalf("edgelist err = %v", err)
	}
}

func TestReadBinaryTruncatedPayloads(t *testing.T) {
	g := gen.ErdosRenyi(60, 180, 3)
	var full strings.Builder
	if err := WriteBinary(&writerAdapter{&full}, g); err != nil {
		t.Fatal(err)
	}
	data := full.String()
	// Every truncation point must error, never panic or return a bogus
	// graph.
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.9, 0.99} {
		cut := int(frac * float64(len(data)))
		if _, err := ReadBinary(strings.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := ReadBinary(strings.NewReader(data)); err != nil {
		t.Fatalf("full data rejected: %v", err)
	}
}

type writerAdapter struct{ b *strings.Builder }

func (w *writerAdapter) Write(p []byte) (int, error) { return w.b.Write(p) }

func TestSaveBinaryBadPath(t *testing.T) {
	g := gen.Ring(5)
	if err := SaveBinary(filepath.Join(t.TempDir(), "no", "such", "dir", "g.bin"), g); err == nil {
		t.Fatal("bad path accepted")
	}
}

func TestReadBinaryImplausibleSizes(t *testing.T) {
	// Header claiming 2^50 vertices must be rejected before allocation.
	var b strings.Builder
	b.WriteString("GCTB")
	le := func(v uint64, n int) {
		for i := 0; i < n; i++ {
			b.WriteByte(byte(v >> (8 * i)))
		}
	}
	le(1, 4)     // version
	le(0, 4)     // flags
	le(1<<50, 8) // n
	le(16, 8)    // arcs
	if _, err := ReadBinary(strings.NewReader(b.String())); err == nil {
		t.Fatal("implausible size accepted")
	}
}
