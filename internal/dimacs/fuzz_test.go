package dimacs

import (
	"bytes"
	"testing"
)

// FuzzDimacsParse hardens the DIMACS parser: arbitrary input must either
// parse into a graph passing Validate or return an error — never panic.
// Beyond the f.Add seeds, a committed corpus lives under
// testdata/fuzz/FuzzDimacsParse; CI runs a short -fuzz smoke over it.
func FuzzDimacsParse(f *testing.F) {
	f.Add([]byte(sample))
	f.Add([]byte("p edge 2 1\ne 1 2 1"))
	f.Add([]byte("c only a comment"))
	f.Add([]byte("p sp 3 2\na 1 2 9\na 3 1 0\n"))
	f.Add([]byte("p edge 0 0\n"))
	f.Add([]byte("e 1 2 1\np edge 2 1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, opt := range []ParseOptions{{MaxVertices: 1 << 20}, {Directed: true, MaxVertices: 1 << 20}, {KeepWeights: true, MaxVertices: 1 << 20}} {
			g, err := ParseBytes(data, opt)
			if err != nil {
				continue
			}
			if verr := g.Validate(); verr != nil {
				t.Fatalf("accepted graph fails validation: %v (input %q)", verr, data)
			}
		}
	})
}

// FuzzParseEdgeListBytes does the same for the SNAP edge-list parser.
func FuzzParseEdgeListBytes(f *testing.F) {
	f.Add([]byte("0 1\n1 2\n"))
	f.Add([]byte("# comment\n5 5\n"))
	f.Add([]byte(""))
	f.Add([]byte("0 1 extra columns ignored?"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ParseEdgeListBytes(data, EdgeListOptions{MaxVertices: 1 << 20})
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted graph fails validation: %v (input %q)", verr, data)
		}
	})
}

// FuzzReadBinary hardens the binary loader against corrupt files.
func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	g, _ := ParseBytes([]byte(sample), ParseOptions{KeepWeights: true})
	_ = WriteBinary(&buf, g)
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("GCTB"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted binary fails validation: %v", verr)
		}
	})
}
