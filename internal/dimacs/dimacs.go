// Package dimacs reads and writes graph files: the DIMACS text format the
// paper's scripting example ingests ("read dimacs patents.txt") and
// GraphCT's binary CSR format for saved graphs and extracted components.
//
// Mirroring the paper's ingest path, the text parser loads the whole file
// into memory and parses it in parallel: the byte buffer is split at line
// boundaries into per-worker chunks, each parsed independently, and the
// edge lists concatenated.
package dimacs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strconv"

	"graphct/internal/graph"
	"graphct/internal/par"
)

// ParseOptions controls DIMACS ingest.
type ParseOptions struct {
	// Directed keeps arcs as written; default symmetrizes, as GraphCT's
	// analyses do.
	Directed bool
	// KeepWeights retains the per-edge integer weights when present.
	KeepWeights bool
	// MaxVertices rejects files whose problem line declares more
	// vertices, guarding against hostile headers demanding enormous
	// allocations. <= 0 means unlimited (trusted input).
	MaxVertices int
}

// Parse reads a DIMACS graph from r into a CSR graph.
//
// Recognized lines: "c ..." comments, one "p <tag> <n> <m>" problem line,
// and edge lines "a <u> <v> [w]" or "e <u> <v> [w]" with 1-based vertex
// ids. Blank lines are ignored. Edges referencing vertices beyond n are an
// error, as is a missing problem line.
func Parse(r io.Reader, opt ParseOptions) (*graph.Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("dimacs: read: %w", err)
	}
	return ParseBytes(data, opt)
}

// ParseFile parses the DIMACS file at path.
func ParseFile(path string, opt ParseOptions) (*graph.Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("dimacs: %w", err)
	}
	return ParseBytes(data, opt)
}

// ParseBytes parses an in-memory DIMACS file in parallel.
func ParseBytes(data []byte, opt ParseOptions) (*graph.Graph, error) {
	n, _, err := header(data)
	if err != nil {
		return nil, err
	}
	if opt.MaxVertices > 0 && n > opt.MaxVertices {
		return nil, fmt.Errorf("dimacs: %d vertices exceeds limit %d", n, opt.MaxVertices)
	}
	chunks := splitLines(data, 4*par.Workers())
	type partial struct {
		edges []graph.WeightedEdge
		err   error
	}
	parts := make([]partial, len(chunks))
	par.For(len(chunks), func(i int) {
		parts[i].edges, parts[i].err = parseChunk(chunks[i], n)
	})
	var total int
	for i := range parts {
		if parts[i].err != nil {
			return nil, parts[i].err
		}
		total += len(parts[i].edges)
	}
	edges := make([]graph.WeightedEdge, 0, total)
	for i := range parts {
		edges = append(edges, parts[i].edges...)
	}
	gopt := graph.Options{Directed: opt.Directed}
	if opt.KeepWeights {
		return graph.FromWeightedEdges(n, edges, gopt)
	}
	plain := make([]graph.Edge, len(edges))
	for i, e := range edges {
		plain[i] = graph.Edge{U: e.U, V: e.V}
	}
	return graph.FromEdges(n, plain, gopt)
}

// header locates and parses the problem line.
func header(data []byte) (n int, m int64, err error) {
	for len(data) > 0 {
		line := data
		if idx := bytes.IndexByte(data, '\n'); idx >= 0 {
			line = data[:idx]
			data = data[idx+1:]
		} else {
			data = nil
		}
		fields := bytes.Fields(line)
		if len(fields) == 0 || fields[0][0] == 'c' {
			continue
		}
		if fields[0][0] == 'p' {
			if len(fields) < 4 {
				return 0, 0, fmt.Errorf("dimacs: malformed problem line %q", line)
			}
			nv, err := strconv.Atoi(string(fields[len(fields)-2]))
			if err != nil || nv < 0 {
				return 0, 0, fmt.Errorf("dimacs: bad vertex count in %q", line)
			}
			ne, err := strconv.ParseInt(string(fields[len(fields)-1]), 10, 64)
			if err != nil || ne < 0 {
				return 0, 0, fmt.Errorf("dimacs: bad edge count in %q", line)
			}
			return nv, ne, nil
		}
		if fields[0][0] == 'a' || fields[0][0] == 'e' {
			return 0, 0, fmt.Errorf("dimacs: edge line before problem line")
		}
	}
	return 0, 0, fmt.Errorf("dimacs: missing problem line")
}

// splitLines cuts data into at most parts chunks ending on line boundaries.
func splitLines(data []byte, parts int) [][]byte {
	if parts < 1 {
		parts = 1
	}
	var chunks [][]byte
	approx := len(data)/parts + 1
	for len(data) > 0 {
		end := approx
		if end >= len(data) {
			chunks = append(chunks, data)
			break
		}
		for end < len(data) && data[end] != '\n' {
			end++
		}
		if end < len(data) {
			end++ // include the newline
		}
		chunks = append(chunks, data[:end])
		data = data[end:]
	}
	return chunks
}

// parseChunk extracts the edges in one chunk. Problem and comment lines are
// skipped (the header may sit inside any chunk).
func parseChunk(chunk []byte, n int) ([]graph.WeightedEdge, error) {
	var edges []graph.WeightedEdge
	for len(chunk) > 0 {
		line := chunk
		if idx := bytes.IndexByte(chunk, '\n'); idx >= 0 {
			line = chunk[:idx]
			chunk = chunk[idx+1:]
		} else {
			chunk = nil
		}
		fields := bytes.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0][0] {
		case 'c', 'p':
			continue
		case 'a', 'e':
			if len(fields) < 3 {
				return nil, fmt.Errorf("dimacs: malformed edge line %q", line)
			}
			u, err := strconv.Atoi(string(fields[1]))
			if err != nil {
				return nil, fmt.Errorf("dimacs: bad source in %q", line)
			}
			v, err := strconv.Atoi(string(fields[2]))
			if err != nil {
				return nil, fmt.Errorf("dimacs: bad target in %q", line)
			}
			w := 1
			if len(fields) >= 4 {
				w, err = strconv.Atoi(string(fields[3]))
				if err != nil {
					return nil, fmt.Errorf("dimacs: bad weight in %q", line)
				}
			}
			if u < 1 || u > n || v < 1 || v > n {
				return nil, fmt.Errorf("dimacs: edge (%d,%d) outside 1..%d", u, v, n)
			}
			edges = append(edges, graph.WeightedEdge{U: int32(u - 1), V: int32(v - 1), W: int32(w)})
		default:
			return nil, fmt.Errorf("dimacs: unrecognized line %q", line)
		}
	}
	return edges, nil
}

// Write emits g in DIMACS format with 1-based ids. Undirected edges are
// written once (u <= v).
func Write(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	tag := "edge"
	kind := byte('e')
	if g.Directed() {
		tag = "sp"
		kind = 'a'
	}
	if _, err := fmt.Fprintf(bw, "c written by graphct\np %s %d %d\n", tag, g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		nbr := g.Neighbors(int32(v))
		wts := g.Weights(int32(v))
		for i, u := range nbr {
			if !g.Directed() && u < int32(v) {
				continue
			}
			weight := int32(1)
			if wts != nil {
				weight = wts[i]
			}
			if _, err := fmt.Fprintf(bw, "%c %d %d %d\n", kind, v+1, u+1, weight); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
