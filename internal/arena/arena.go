// Package arena provides a bump allocator for kernel scratch memory.
//
// Per-source kernels like Brandes betweenness carve half a dozen O(n)
// arrays per workspace (dist, sigma, delta, visitation order, frontier
// bitmap). Allocating them individually costs one GC-visible object each
// and scatters them across the heap; a workspace arena makes them one
// allocation, laid out contiguously in the order the sweeps touch them,
// and reusable across sources with a pointer reset instead of a free.
// The allocator only hands out pointer-free element types, so the GC
// never scans the buffer.
package arena

import "unsafe"

// Arena is a bump allocator over one contiguous buffer. Not safe for
// concurrent use — kernels keep one arena per worker (the same discipline
// as their workspaces).
type Arena struct {
	buf []byte
	off int
}

// New returns an arena with the given byte capacity.
func New(capacity int) *Arena {
	if capacity < 0 {
		capacity = 0
	}
	return &Arena{buf: make([]byte, capacity)}
}

// Cap returns the arena's total byte capacity.
func (a *Arena) Cap() int { return len(a.buf) }

// Used returns the bytes currently allocated.
func (a *Arena) Used() int { return a.off }

// Reset makes the whole buffer available again. Slices handed out before
// the reset must no longer be used: they alias memory the next allocations
// will reuse.
func (a *Arena) Reset() { a.off = 0 }

// align8 is the allocation granularity; every type the kernels carve
// (int32, int64, float64, uint64) is satisfied by 8-byte alignment, and
// the Go allocator aligns the backing buffer at least that much.
const align8 = 8

// Make carves an n-element slice of T from the arena, zeroed (the backing
// buffer starts zero and Reset does not re-zero — callers that reuse an
// arena reset their state explicitly, exactly as the pooled kernel
// workspaces already do). When the arena is exhausted it falls back to the
// regular heap, so sizing the arena is a performance decision, never a
// correctness one.
//
// T must not contain pointers: the arena's buffer is untyped bytes, so the
// GC would never see them. All kernel scratch types (ids, counts, scores,
// bit words) qualify.
func Make[T any](a *Arena, n int) []T {
	var zero T
	size := int(unsafe.Sizeof(zero))
	if n <= 0 {
		return []T{}
	}
	need := size * n
	off := (a.off + align8 - 1) &^ (align8 - 1)
	if off+need > len(a.buf) {
		return make([]T, n)
	}
	a.off = off + need
	return unsafe.Slice((*T)(unsafe.Pointer(&a.buf[off])), n)
}

// Bytes returns the byte size of an n-element []T allocation including
// alignment padding — the sizing helper for pre-computing an arena
// capacity that fits a whole workspace.
func Bytes[T any](n int) int {
	var zero T
	size := int(unsafe.Sizeof(zero)) * n
	return (size + align8 - 1) &^ (align8 - 1)
}
