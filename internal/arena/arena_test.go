package arena

import "testing"

func TestMakeCarvesZeroedAlignedSlices(t *testing.T) {
	a := New(Bytes[int32](3) + Bytes[float64](2) + Bytes[uint64](1))
	xs := Make[int32](a, 3)
	ys := Make[float64](a, 2)
	zs := Make[uint64](a, 1)
	if len(xs) != 3 || len(ys) != 2 || len(zs) != 1 {
		t.Fatalf("lengths = %d %d %d", len(xs), len(ys), len(zs))
	}
	for i, x := range xs {
		if x != 0 {
			t.Fatalf("xs[%d] = %d, want 0", i, x)
		}
	}
	if ys[0] != 0 || ys[1] != 0 || zs[0] != 0 {
		t.Fatal("carved slices not zeroed")
	}
	// The three carves fill the arena exactly: every allocation rounds to
	// the 8-byte granularity Bytes accounts for.
	if a.Used() != a.Cap() {
		t.Fatalf("Used = %d, Cap = %d; Bytes sizing disagrees with Make", a.Used(), a.Cap())
	}
	// Writes land in the arena, not some shared scratch: slices are
	// disjoint.
	xs[2] = -1
	ys[0] = 3.5
	if zs[0] != 0 {
		t.Fatal("writes to earlier carves leaked into a later one")
	}
}

func TestMakeAlignsOddSizes(t *testing.T) {
	a := New(64)
	b := Make[byte](a, 3) // 3 bytes, next carve must realign
	f := Make[float64](a, 1)
	if len(b) != 3 || len(f) != 1 {
		t.Fatal("bad lengths")
	}
	if a.Used()%8 != 0 {
		t.Fatalf("Used = %d, want multiple of 8 after float64 carve", a.Used())
	}
	if Bytes[byte](3) != 8 {
		t.Fatalf("Bytes[byte](3) = %d, want 8 (padded)", Bytes[byte](3))
	}
}

func TestMakeFallsBackToHeapWhenExhausted(t *testing.T) {
	a := New(16)
	first := Make[int64](a, 2) // fills the arena
	over := Make[int64](a, 4)  // must come from the heap, not fail
	if len(first) != 2 || len(over) != 4 {
		t.Fatal("bad lengths")
	}
	if a.Used() != 16 {
		t.Fatalf("Used = %d after heap fallback, want 16 (fallback must not consume arena)", a.Used())
	}
	over[0] = 7 // must not corrupt the arena carve
	if first[0] != 0 {
		t.Fatal("heap fallback aliases the arena")
	}
}

func TestResetReusesBuffer(t *testing.T) {
	a := New(Bytes[int32](4))
	first := Make[int32](a, 4)
	first[0] = 42
	a.Reset()
	if a.Used() != 0 {
		t.Fatalf("Used = %d after Reset", a.Used())
	}
	second := Make[int32](a, 4)
	// Same backing memory: Reset recycles, it does not re-zero (the
	// documented contract — callers clear their own state).
	if &first[0] != &second[0] {
		t.Fatal("Reset did not reuse the buffer")
	}
	if second[0] != 42 {
		t.Fatalf("second[0] = %d; Reset must not re-zero", second[0])
	}
}

func TestDegenerateSizes(t *testing.T) {
	a := New(-5)
	if a.Cap() != 0 {
		t.Fatalf("Cap = %d for negative capacity", a.Cap())
	}
	if s := Make[int32](a, 0); len(s) != 0 {
		t.Fatal("n=0 must yield an empty slice")
	}
	if s := Make[int32](a, -1); len(s) != 0 {
		t.Fatal("n<0 must yield an empty slice")
	}
	if s := Make[int64](a, 3); len(s) != 3 {
		t.Fatal("empty arena must still serve via heap fallback")
	}
	if Bytes[int32](0) != 0 {
		t.Fatalf("Bytes(0) = %d", Bytes[int32](0))
	}
}
