// Package testutil holds helpers shared across the repo's test suites.
package testutil

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// CheckGoroutines arranges for the test to fail if it finishes with more
// goroutines than it started with — the leak hygiene check for code that
// spawns workers (the load driver, lane admission, rate limiting). Call
// it FIRST in the test, before any other t.Cleanup registration: cleanups
// run last-in-first-out, so the check then runs after the test's own
// teardown (server shutdowns, CloseIdleConnections) has retired its
// goroutines.
//
// Goroutines legitimately take a moment to unwind after a cancel, so the
// check polls up to a grace window before declaring a leak, and allows
// the small slack the runtime and net/http keep for themselves.
func CheckGoroutines(t testing.TB) {
	t.Helper()
	const slack = 2
	baseline := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(3 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= baseline+slack {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: started with %d, finished with %d\n%s",
			baseline, n, shorten(buf))
	})
}

// shorten keeps failure output readable: full dumps of a busy test binary
// run to hundreds of KB, and the leaked stacks are at the top anyway.
func shorten(buf []byte) string {
	const max = 16 << 10
	if len(buf) <= max {
		return string(buf)
	}
	return fmt.Sprintf("%s\n... (%d bytes of stacks elided)", buf[:max], len(buf)-max)
}
