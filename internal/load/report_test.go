package load

import (
	"path/filepath"
	"strings"
	"testing"
)

func goodReport() *Report {
	return &Report{
		Generator:  "loadgen -test",
		GoVersion:  "go1.22",
		GoMaxProcs: 1,
		Seed:       1,
		Target:     "self",
		Rows: []Row{{
			Config: "lanes_on", Multiplier: 1, DurationSec: 5, WarmupSec: 1,
			Classes: []ClassReport{{
				Name: "stats", Mode: "open", OfferedQPS: 100, AchievedQPS: 99,
				Requests: 495, Status: map[string]int64{"200": 490, "429": 5},
				P50Ms: 1, P95Ms: 2, P99Ms: 3, MaxMs: 4,
			}},
		}},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := goodReport().Validate(); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Report)
		want string
	}{
		{"no metadata", func(r *Report) { r.Generator = "" }, "metadata"},
		{"bad gomaxprocs", func(r *Report) { r.GoMaxProcs = 0 }, "gomaxprocs"},
		{"no target", func(r *Report) { r.Target = "" }, "target"},
		{"no rows", func(r *Report) { r.Rows = nil }, "no rows"},
		{"empty config", func(r *Report) { r.Rows[0].Config = "" }, "config"},
		{"zero multiplier", func(r *Report) { r.Rows[0].Multiplier = 0 }, "multiplier"},
		{"zero duration", func(r *Report) { r.Rows[0].DurationSec = 0 }, "duration"},
		{"no classes", func(r *Report) { r.Rows[0].Classes = nil }, "no classes"},
		{"bad mode", func(r *Report) { r.Rows[0].Classes[0].Mode = "laps" }, "mode"},
		{"bad status key", func(r *Report) {
			c := &r.Rows[0].Classes[0]
			delete(c.Status, "429")
			c.Status["teapot"] = 5
		}, "status key"},
		{"status sum mismatch", func(r *Report) { r.Rows[0].Classes[0].Requests = 7 }, "sum"},
		{"non-monotone quantiles", func(r *Report) { r.Rows[0].Classes[0].P95Ms = 9 }, "monotone"},
		{"negative latency", func(r *Report) { r.Rows[0].Classes[0].P50Ms = -1 }, "negative"},
		{"nothing measured", func(r *Report) {
			c := &r.Rows[0].Classes[0]
			c.Requests, c.Status = 0, nil
			c.P50Ms, c.P95Ms, c.P99Ms, c.MaxMs = 0, 0, 0, 0
		}, "zero requests"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := goodReport()
			c.mut(r)
			err := r.Validate()
			if err == nil {
				t.Fatal("malformed report validated")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestReportRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_LOAD.json")
	r := goodReport()
	if err := r.WriteReport(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("roundtripped report invalid: %v", err)
	}
	if got.Rows[0].Config != "lanes_on" || got.Rows[0].Classes[0].Status["200"] != 490 {
		t.Fatalf("roundtrip lost data: %+v", got.Rows[0])
	}
	if _, ok := got.Rows[0].Class("stats"); !ok {
		t.Fatal("Class lookup failed after roundtrip")
	}
	if _, ok := got.Rows[0].Class("absent"); ok {
		t.Fatal("Class lookup invented a class")
	}
}

func TestReadReportMissing(t *testing.T) {
	if _, err := ReadReport(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file read succeeded")
	}
}
