package load

import (
	"context"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Op issues one request of a workload class and returns the HTTP status
// it observed (0 with a non-nil error for a transport failure). Ops must
// be safe for concurrent use: the driver calls one Op from many
// goroutines.
type Op func(ctx context.Context) (status int, err error)

// Class is one lane of the mixed workload. Exactly one pacing mode
// applies: QPS > 0 runs the class open-loop (requests fire at the target
// arrival rate whether or not earlier ones finished — the pacing that
// exposes queueing collapse, because a slow server faces undiminished
// arrivals), otherwise Workers run closed-loop (each worker issues
// back-to-back requests, so offered load self-throttles with latency).
type Class struct {
	Name    string
	Do      Op
	QPS     float64 // open-loop target arrival rate (requests/second)
	Workers int     // closed-loop workers when QPS == 0; open-loop in-flight cap otherwise (default 512)
}

// Options tune one Run.
type Options struct {
	// Duration is the measured window (default 5s). Warmup runs before it
	// and its samples are discarded: caches fill, lanes reach steady
	// state, and the quantiles describe the regime, not the ramp.
	Duration time.Duration
	Warmup   time.Duration
}

// ClassReport is the per-class result of a Run: counts, status mix, and
// the latency quantiles the SLOs are written against. All figures cover
// the measured window only (post-warmup).
type ClassReport struct {
	Name    string `json:"name"`
	Mode    string `json:"mode"` // "open" or "closed"
	Workers int    `json:"workers,omitempty"`

	OfferedQPS  float64 `json:"offered_qps,omitempty"` // open-loop target
	AchievedQPS float64 `json:"achieved_qps"`          // completions / measured window

	Requests int64            `json:"requests"` // completed requests measured
	Errors   int64            `json:"errors"`   // transport failures (no status)
	Missed   int64            `json:"missed,omitempty"`
	Status   map[string]int64 `json:"status"` // "200" -> count

	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// Rate returns the fraction of measured requests that saw status (e.g.
// "429"), counting transport errors in the denominator.
func (c *ClassReport) Rate(status string) float64 {
	total := c.Requests + c.Errors
	if total == 0 {
		return 0
	}
	return float64(c.Status[status]) / float64(total)
}

// recorder accumulates one class's samples. Latencies are kept raw (8
// bytes each) rather than bucketed: a run is minutes at most, and exact
// quantiles make lanes-on/lanes-off comparisons trustworthy at the tail.
type recorder struct {
	mu        sync.Mutex
	latencies []float64 // ms, measured window only
	status    map[string]int64
	errors    int64
	missed    atomic.Int64
}

func (r *recorder) observe(ms float64, status int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil {
		r.errors++
		return
	}
	r.latencies = append(r.latencies, ms)
	if r.status == nil {
		r.status = make(map[string]int64)
	}
	r.status[strconv.Itoa(status)]++
}

// quantile returns the q-th (0..1) latency by nearest rank over sorted.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func (r *recorder) report(c Class, window time.Duration) ClassReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := ClassReport{
		Name:     c.Name,
		Mode:     "closed",
		Workers:  c.Workers,
		Requests: int64(len(r.latencies)),
		Errors:   r.errors,
		Missed:   r.missed.Load(),
		Status:   r.status,
	}
	if rep.Status == nil {
		rep.Status = map[string]int64{}
	}
	if c.QPS > 0 {
		rep.Mode = "open"
		rep.OfferedQPS = c.QPS
	}
	if window > 0 {
		rep.AchievedQPS = float64(rep.Requests) / window.Seconds()
	}
	sorted := append([]float64(nil), r.latencies...)
	sort.Float64s(sorted)
	rep.P50Ms = quantile(sorted, 0.50)
	rep.P95Ms = quantile(sorted, 0.95)
	rep.P99Ms = quantile(sorted, 0.99)
	if n := len(sorted); n > 0 {
		rep.MaxMs = sorted[n-1]
	}
	return rep
}

// Run drives every class concurrently for warmup+duration and returns
// one report per class, in input order. It honors ctx cancellation
// (reports cover whatever was measured) and joins every goroutine it
// started before returning — the driver never leaks workers.
func Run(ctx context.Context, classes []Class, opt Options) []ClassReport {
	if opt.Duration <= 0 {
		opt.Duration = 5 * time.Second
	}
	start := time.Now()
	measureFrom := start.Add(opt.Warmup)
	stop := measureFrom.Add(opt.Duration)
	runCtx, cancel := context.WithDeadline(ctx, stop)
	defer cancel()

	recs := make([]*recorder, len(classes))
	var wg sync.WaitGroup
	for i, c := range classes {
		rec := &recorder{}
		recs[i] = rec
		issue := func() {
			t0 := time.Now()
			status, err := c.Do(runCtx)
			if t0.Before(measureFrom) || runCtx.Err() != nil {
				return // warmup sample, or torn down mid-request
			}
			rec.observe(float64(time.Since(t0))/float64(time.Millisecond), status, err)
		}
		if c.QPS > 0 {
			wg.Add(1)
			go func(c Class) {
				defer wg.Done()
				openLoop(runCtx, c, rec, issue, &wg)
			}(c)
			continue
		}
		workers := c.Workers
		if workers <= 0 {
			workers = 1
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for runCtx.Err() == nil {
					issue()
				}
			}()
		}
	}
	wg.Wait()

	// The measured window may have been cut short by ctx; report against
	// the window that actually elapsed.
	window := time.Since(measureFrom)
	if window > opt.Duration {
		window = opt.Duration
	}
	out := make([]ClassReport, len(classes))
	for i, c := range classes {
		out[i] = recs[i].report(c, window)
	}
	return out
}

// openLoop fires issue at c.QPS regardless of completions, spawning one
// goroutine per arrival up to an in-flight cap. Arrivals that find the
// cap exhausted are counted as missed rather than queued client-side:
// a growing missed count means the measured latencies understate how far
// past saturation the server is.
func openLoop(ctx context.Context, c Class, rec *recorder, issue func(), wg *sync.WaitGroup) {
	maxInflight := c.Workers
	if maxInflight <= 0 {
		maxInflight = 512
	}
	inflight := make(chan struct{}, maxInflight)
	interval := time.Duration(float64(time.Second) / c.QPS)
	if interval <= 0 {
		interval = time.Microsecond
	}
	// Deterministic phase offset so many classes with round rates do not
	// fire in lockstep at t=0.
	time.Sleep(time.Duration(rand.New(rand.NewSource(int64(len(c.Name)))).Int63n(int64(interval) + 1)))
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		select {
		case inflight <- struct{}{}:
		default:
			rec.missed.Add(1)
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-inflight }()
			issue()
		}()
	}
}
