package load

import (
	"context"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"graphct/internal/api"
	"graphct/internal/stream"
)

// Target names the daemon a workload class talks to. Client, when set,
// travels as the X-Graphct-Client header so per-client rate limits and
// the class attribution in graphctd's metrics see distinct callers.
type Target struct {
	Base   string // e.g. http://127.0.0.1:8423
	Graph  string
	Client string
	HTTP   *http.Client // nil = http.DefaultClient
}

func (t Target) client() *http.Client {
	if t.HTTP != nil {
		return t.HTTP
	}
	return http.DefaultClient
}

// Kernel returns an Op issuing GET /graphs/{graph}/{kernel}?{params()}.
// params may be nil for parameterless kernels; otherwise it is called
// once per request (under a lock, so a seeded rand.Rand closure is fine)
// — varying parameters is how a read class defeats the result cache when
// the run wants kernel executions rather than cache hits.
func (t Target) Kernel(kernel string, params func() string) Op {
	var mu sync.Mutex
	return func(ctx context.Context) (int, error) {
		url := t.Base + "/graphs/" + t.Graph + "/" + kernel
		if params != nil {
			mu.Lock()
			p := params()
			mu.Unlock()
			if p != "" {
				url += "?" + p
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return 0, err
		}
		if t.Client != "" {
			req.Header.Set(ClientHeader, t.Client)
		}
		resp, err := t.client().Do(req)
		if err != nil {
			return 0, err
		}
		DrainBody(resp)
		return resp.StatusCode, nil
	}
}

// ClientHeader is the per-client identity header graphctd keys its rate
// limiter on.
const ClientHeader = api.HeaderClient

// Ingest returns an Op posting one GCTU-framed batch per call to the
// target's live graph. Batches are deterministic from seed: batch i holds
// batchSize random edges under 2^scaleBits vertices, and its batch ID is
// runID/i, so a re-run with the same seed and runID offers the identical
// update stream (and a retried batch is deduped server-side). The Op does
// NOT retry: the driver measures raw statuses, and a 429 is a sample, not
// an error to hide.
func (t Target) Ingest(runID string, vertices, batchSize int, seed int64) Op {
	var seq atomic.Int64
	return func(ctx context.Context) (int, error) {
		i := seq.Add(1) - 1
		// Per-batch RNG keyed on (seed, i): batches are identical across
		// runs regardless of interleaving.
		rng := rand.New(rand.NewSource(seed ^ (i * 0x9e3779b9)))
		batch := make([]stream.Update, batchSize)
		for j := range batch {
			u := int32(rng.Intn(vertices))
			v := int32(rng.Intn(vertices))
			if u == v {
				v = (v + 1) % int32(vertices)
			}
			batch[j] = stream.Update{U: u, V: v, Time: i*int64(batchSize) + int64(j)}
		}
		buf, contentType, err := EncodeBatch(batch, true)
		if err != nil {
			return 0, err
		}
		url := t.Base + "/graphs/" + t.Graph + "/ingest?batch_id=" + runID + "%2F" + strconv.FormatInt(i, 10)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, buf)
		if err != nil {
			return 0, err
		}
		req.Header.Set("Content-Type", contentType)
		if t.Client != "" {
			req.Header.Set(ClientHeader, t.Client)
		}
		resp, err := t.client().Do(req)
		if err != nil {
			return 0, err
		}
		DrainBody(resp)
		return resp.StatusCode, nil
	}
}
