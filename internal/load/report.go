package load

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
)

// Row is one measured configuration in the trajectory: a label (e.g.
// "lanes_off" / "lanes_on"), the open-loop rate multiplier it ran at
// (saturation curves are rows at rising multipliers), and the per-class
// results.
type Row struct {
	Config      string        `json:"config"`
	Multiplier  float64       `json:"multiplier"`
	DurationSec float64       `json:"duration_sec"`
	WarmupSec   float64       `json:"warmup_sec"`
	Classes     []ClassReport `json:"classes"`
}

// Report is the BENCH_LOAD.json document: run metadata plus one Row per
// measured configuration, mirroring cmd/bench's BENCH_PRn.json idiom so
// CI can validate and gate on it the same way.
type Report struct {
	Generator  string  `json:"generator"`
	GoVersion  string  `json:"go_version"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Seed       int64   `json:"seed"`
	Scale      int     `json:"scale,omitempty"` // self-hosted R-MAT scale (0 = external target)
	Target     string  `json:"target"`          // "self" or the external base URL
	Rows       []Row   `json:"rows"`
}

// Validate is the schema check scripts/bench.sh and -check gate on: it
// rejects a report whose metadata or rows could not have come from a real
// run, so a refactor that silently breaks the harness fails the build
// instead of committing an empty trajectory.
func (r *Report) Validate() error {
	if r.Generator == "" || r.GoVersion == "" {
		return fmt.Errorf("missing generator/go_version metadata")
	}
	if r.GoMaxProcs <= 0 {
		return fmt.Errorf("gomaxprocs %d is not positive", r.GoMaxProcs)
	}
	if r.Target == "" {
		return fmt.Errorf("missing target")
	}
	if len(r.Rows) == 0 {
		return fmt.Errorf("no rows")
	}
	for i, row := range r.Rows {
		if row.Config == "" {
			return fmt.Errorf("row %d: empty config label", i)
		}
		if row.Multiplier <= 0 {
			return fmt.Errorf("row %d (%s): multiplier %v is not positive", i, row.Config, row.Multiplier)
		}
		if row.DurationSec <= 0 {
			return fmt.Errorf("row %d (%s): duration_sec %v is not positive", i, row.Config, row.DurationSec)
		}
		if len(row.Classes) == 0 {
			return fmt.Errorf("row %d (%s): no classes", i, row.Config)
		}
		measured := false
		for _, c := range row.Classes {
			if err := validateClass(c); err != nil {
				return fmt.Errorf("row %d (%s): class %s: %w", i, row.Config, c.Name, err)
			}
			if c.Requests > 0 {
				measured = true
			}
		}
		if !measured {
			return fmt.Errorf("row %d (%s): every class measured zero requests", i, row.Config)
		}
	}
	return nil
}

func validateClass(c ClassReport) error {
	if c.Name == "" {
		return fmt.Errorf("empty name")
	}
	if c.Mode != "open" && c.Mode != "closed" {
		return fmt.Errorf("mode %q is not open or closed", c.Mode)
	}
	if c.Requests < 0 || c.Errors < 0 || c.Missed < 0 {
		return fmt.Errorf("negative counts")
	}
	var counted int64
	for status, n := range c.Status {
		if n < 0 {
			return fmt.Errorf("status %s: negative count", status)
		}
		if v, err := strconv.Atoi(status); err != nil || v < 100 || v > 599 {
			return fmt.Errorf("status key %q is not an HTTP status", status)
		}
		counted += n
	}
	if counted != c.Requests {
		return fmt.Errorf("status counts sum to %d, requests say %d", counted, c.Requests)
	}
	q := []float64{c.P50Ms, c.P95Ms, c.P99Ms, c.MaxMs}
	for _, v := range q {
		if v < 0 {
			return fmt.Errorf("negative latency quantile")
		}
	}
	if c.Requests > 0 && (c.P50Ms > c.P95Ms || c.P95Ms > c.P99Ms || c.P99Ms > c.MaxMs) {
		return fmt.Errorf("quantiles not monotone: p50 %v p95 %v p99 %v max %v",
			c.P50Ms, c.P95Ms, c.P99Ms, c.MaxMs)
	}
	return nil
}

// ReadReport loads and parses (but does not Validate) a report file.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// WriteReport writes the report as indented JSON.
func (r *Report) WriteReport(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Class returns row's report for the named class, if present.
func (row *Row) Class(name string) (ClassReport, bool) {
	for _, c := range row.Classes {
		if c.Name == name {
			return c, true
		}
	}
	return ClassReport{}, false
}
