// Package load is the mixed-workload SLO harness: a closed+open-loop
// driver that plays a configurable mix of cheap kernel reads, sparse
// expensive centrality requests and streaming ingest against a running
// graphctd, recording per-class latency quantiles and status rates into a
// machine-readable report (BENCH_LOAD.json). The paper's premise is
// interactive analysis of a Twitter-scale graph under continuous update;
// this package is how the repo proves the serving path holds latency
// SLOs when those workloads contend.
//
// The package also owns the shared HTTP client conventions — jittered
// exponential backoff, idempotent batch posting — that cmd/tweetgen
// pioneered and cmd/loadgen reuses.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	neturl "net/url"
	"time"

	"graphct/internal/api"
	"graphct/internal/stream"
)

// RetryableStatus reports whether a response warrants a retry: 429 is
// backpressure, 5xx is a transient server failure (an idempotent batch ID
// makes the retry safe either way).
func RetryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

// MaxAttempts bounds retries of server failures; backpressure (429)
// retries indefinitely — the server is healthy, just busy.
const MaxAttempts = 10

// WithRetry runs send until it returns a non-retryable status, applying
// jittered exponential backoff (10ms doubling to a 1s cap, ±50% jitter so
// synchronized clients do not re-converge on the same instant).
func WithRetry(rng *rand.Rand, send func() (int, error)) error {
	backoff := 10 * time.Millisecond
	for attempt := 1; ; attempt++ {
		code, err := send()
		if err != nil {
			return err
		}
		if !RetryableStatus(code) {
			return nil
		}
		if code >= 500 && attempt >= MaxAttempts {
			return fmt.Errorf("giving up after %d attempts (last status %d)", attempt, code)
		}
		jitter := 0.5 + rng.Float64() // uniform in [0.5, 1.5)
		time.Sleep(time.Duration(float64(backoff) * jitter))
		if backoff < time.Second {
			backoff *= 2
		}
	}
}

// IngestReply is the body of a successful ingest response.
type IngestReply struct {
	Accepted    int    `json:"accepted"`
	Edges       int64  `json:"edges"`
	Epoch       uint64 `json:"epoch"`
	Snapshotted bool   `json:"snapshotted"`
}

// EncodeBatch marshals a batch for the ingest endpoint, in the compact
// GCTU binary framing (the default) or as JSON, returning the content
// type to post with.
func EncodeBatch(batch []stream.Update, binary bool) (*bytes.Buffer, string, error) {
	var buf bytes.Buffer
	if binary {
		if err := stream.EncodeUpdates(&buf, batch); err != nil {
			return nil, "", err
		}
		return &buf, stream.WireContentType, nil
	}
	type ju struct {
		U    int32 `json:"u"`
		V    int32 `json:"v"`
		Time int64 `json:"time,omitempty"`
		Del  bool  `json:"del,omitempty"`
	}
	out := make([]ju, len(batch))
	for i, up := range batch {
		out[i] = ju{U: up.U, V: up.V, Time: up.Time, Del: up.Del}
	}
	if err := json.NewEncoder(&buf).Encode(out); err != nil {
		return nil, "", err
	}
	return &buf, "application/json", nil
}

// PostBatch sends one ingest batch under a client-assigned batch ID,
// retrying 429 (backpressure) and 5xx (server failure) with jittered
// exponential backoff. The ID lets the server dedupe a retry of a batch
// it actually applied before failing, so retries never double-apply.
func PostBatch(base, name, batchID string, batch []stream.Update, binary bool, rng *rand.Rand) (IngestReply, error) {
	buf, contentType, err := EncodeBatch(batch, binary)
	if err != nil {
		return IngestReply{}, err
	}
	url := base + "/graphs/" + name + "/ingest?batch_id=" + neturl.QueryEscape(batchID)
	var rep IngestReply
	err = WithRetry(rng, func() (int, error) {
		resp, err := http.Post(url, contentType, bytes.NewReader(buf.Bytes()))
		if err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusOK {
			code := resp.StatusCode
			err := Drain(resp, http.StatusOK)
			if RetryableStatus(code) {
				return code, nil
			}
			return code, fmt.Errorf("ingest: %w", err)
		}
		err = json.NewDecoder(resp.Body).Decode(&rep)
		DrainBody(resp)
		return http.StatusOK, err
	})
	return rep, err
}

// Drain consumes and closes resp's body, returning an error carrying the
// server's JSON error message unless the status matches want.
func Drain(resp *http.Response, want int) error {
	defer DrainBody(resp)
	if resp.StatusCode == want {
		return nil
	}
	body, _ := io.ReadAll(resp.Body)
	return fmt.Errorf("HTTP %d: %s", resp.StatusCode, api.DecodeError(body))
}

// DrainBody consumes and closes resp's body so the transport can reuse
// the connection.
func DrainBody(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
}
