package load

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"graphct/internal/testutil"
)

func TestRunClosedLoop(t *testing.T) {
	testutil.CheckGoroutines(t)
	var calls atomic.Int64
	op := func(ctx context.Context) (int, error) {
		calls.Add(1)
		time.Sleep(time.Millisecond)
		return 200, nil
	}
	reports := Run(context.Background(), []Class{
		{Name: "read", Do: op, Workers: 3},
	}, Options{Duration: 300 * time.Millisecond})
	if len(reports) != 1 {
		t.Fatalf("got %d reports", len(reports))
	}
	r := reports[0]
	if r.Mode != "closed" || r.Name != "read" {
		t.Fatalf("mode %q name %q", r.Mode, r.Name)
	}
	if r.Requests == 0 {
		t.Fatal("closed loop measured no requests")
	}
	if r.Status["200"] != r.Requests {
		t.Fatalf("status map %v does not account for %d requests", r.Status, r.Requests)
	}
	if r.Requests > calls.Load() {
		t.Fatalf("measured %d requests but op ran %d times", r.Requests, calls.Load())
	}
	if r.P50Ms > r.P95Ms || r.P95Ms > r.P99Ms || r.P99Ms > r.MaxMs {
		t.Fatalf("quantiles not monotone: %+v", r)
	}
	if r.AchievedQPS <= 0 {
		t.Fatalf("achieved qps %v", r.AchievedQPS)
	}
}

func TestRunOpenLoopPaces(t *testing.T) {
	testutil.CheckGoroutines(t)
	op := func(ctx context.Context) (int, error) { return 200, nil }
	reports := Run(context.Background(), []Class{
		{Name: "open", Do: op, QPS: 200},
	}, Options{Duration: 500 * time.Millisecond})
	r := reports[0]
	if r.Mode != "open" || r.OfferedQPS != 200 {
		t.Fatalf("mode %q offered %v", r.Mode, r.OfferedQPS)
	}
	if r.Requests == 0 {
		t.Fatal("open loop measured no requests")
	}
	// Pacing is a ticker, not a busy loop: an instant op must not complete
	// wildly more requests than the offered rate allows.
	if max := int64(2 * 200 * 0.5); r.Requests > max {
		t.Fatalf("measured %d requests, offered rate allows ~%d", r.Requests, max)
	}
}

// TestRunWarmupDiscard proves warmup samples never reach the report: the
// op fails loudly during warmup and succeeds after, and the measured
// status mix must contain only the post-warmup statuses.
func TestRunWarmupDiscard(t *testing.T) {
	testutil.CheckGoroutines(t)
	warmup := 150 * time.Millisecond
	boundary := time.Now().Add(warmup)
	op := func(ctx context.Context) (int, error) {
		if time.Now().Before(boundary) {
			return 500, nil
		}
		return 200, nil
	}
	reports := Run(context.Background(), []Class{
		{Name: "warm", Do: op, Workers: 2},
	}, Options{Duration: 200 * time.Millisecond, Warmup: warmup})
	r := reports[0]
	if r.Requests == 0 {
		t.Fatal("no measured requests")
	}
	if n := r.Status["500"]; n != 0 {
		t.Fatalf("%d warmup-era samples leaked into the report: %v", n, r.Status)
	}
}

func TestRunHonorsCancel(t *testing.T) {
	testutil.CheckGoroutines(t)
	ctx, cancel := context.WithCancel(context.Background())
	op := func(ctx context.Context) (int, error) {
		<-ctx.Done()
		return 0, ctx.Err()
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	Run(ctx, []Class{
		{Name: "stuck", Do: op, Workers: 4},
		{Name: "paced", Do: op, QPS: 100},
	}, Options{Duration: 10 * time.Second})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Run held cancelled workload for %v", elapsed)
	}
}

// TestRunInflightCap: when the server stops answering, an open-loop class
// stops spawning at its in-flight cap and counts further arrivals as
// missed instead of hoarding goroutines.
func TestRunInflightCap(t *testing.T) {
	testutil.CheckGoroutines(t)
	var inflight, peak atomic.Int64
	op := func(ctx context.Context) (int, error) {
		n := inflight.Add(1)
		defer inflight.Add(-1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		<-ctx.Done()
		return 0, ctx.Err()
	}
	reports := Run(context.Background(), []Class{
		{Name: "stalled", Do: op, QPS: 1000, Workers: 4}, // Workers = in-flight cap for open loop
	}, Options{Duration: 300 * time.Millisecond})
	r := reports[0]
	if p := peak.Load(); p > 4 {
		t.Fatalf("in-flight peaked at %d, cap is 4", p)
	}
	if r.Missed == 0 {
		t.Fatal("stalled server produced no missed arrivals")
	}
	// Every in-flight request died with the context: transport errors, not
	// statuses — and errors land in the denominator of Rate.
	if r.Requests != 0 {
		t.Fatalf("stalled ops measured %d completed requests", r.Requests)
	}
}

func TestRunRecordsErrors(t *testing.T) {
	testutil.CheckGoroutines(t)
	fail := errors.New("connection refused")
	op := func(ctx context.Context) (int, error) { return 0, fail }
	reports := Run(context.Background(), []Class{
		{Name: "down", Do: op, Workers: 1},
	}, Options{Duration: 100 * time.Millisecond})
	r := reports[0]
	if r.Errors == 0 {
		t.Fatal("transport failures not counted")
	}
	if r.Requests != 0 {
		t.Fatalf("failures counted as completed requests: %d", r.Requests)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want float64
	}{{0.5, 5}, {0.95, 10}, {0.99, 10}, {0.1, 1}}
	for _, c := range cases {
		if got := quantile(sorted, c.q); got != c.want {
			t.Errorf("quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("quantile of empty = %v", got)
	}
	if got := quantile([]float64{7}, 0.99); got != 7 {
		t.Errorf("quantile of singleton = %v", got)
	}
}

func TestRate(t *testing.T) {
	c := ClassReport{Requests: 8, Errors: 2, Status: map[string]int64{"200": 6, "429": 2}}
	if got := c.Rate("429"); got != 0.2 {
		t.Fatalf("Rate(429) = %v, want 0.2 (errors count in the denominator)", got)
	}
	var empty ClassReport
	if got := empty.Rate("200"); got != 0 {
		t.Fatalf("Rate on empty report = %v", got)
	}
}
