// Package stats provides GraphCT's statistical characterization kernels:
// degree distributions and their summaries, histograms for the power-law
// analyses, a maximum-likelihood power-law exponent fit, and the sampled
// BFS diameter estimator every traversal kernel sizes its queues from.
package stats

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"graphct/internal/bfs"
	"graphct/internal/graph"
	"graphct/internal/par"
)

// DegreeStats summarizes a degree distribution as the paper's "degree
// statistics ... summarized by their mean and variance".
type DegreeStats struct {
	N        int
	Min, Max int
	Mean     float64
	Variance float64 // population variance
}

// Degrees computes the degree statistics of g in parallel.
func Degrees(g *graph.Graph) DegreeStats {
	n := g.NumVertices()
	if n == 0 {
		return DegreeStats{}
	}
	sum := par.ReduceSum(n, func(v int) int64 { return int64(g.Degree(int32(v))) })
	sumSq := par.ReduceSum(n, func(v int) float64 {
		d := float64(g.Degree(int32(v)))
		return d * d
	})
	min := par.ReduceMin(n, func(v int) int64 { return int64(g.Degree(int32(v))) }, math.MaxInt64)
	max := par.ReduceMax(n, func(v int) int64 { return int64(g.Degree(int32(v))) }, 0)
	mean := float64(sum) / float64(n)
	return DegreeStats{
		N:        n,
		Min:      int(min),
		Max:      int(max),
		Mean:     mean,
		Variance: sumSq/float64(n) - mean*mean,
	}
}

// HistogramBin is one bin of a degree histogram.
type HistogramBin struct {
	Lo, Hi int   // degree range [Lo, Hi]
	Count  int64 // vertices whose degree falls in the range
}

// DegreeHistogram returns the exact histogram: one bin per occurring
// degree, ascending.
func DegreeHistogram(g *graph.Graph) []HistogramBin {
	counts := make(map[int]int64)
	for v := 0; v < g.NumVertices(); v++ {
		counts[g.Degree(int32(v))]++
	}
	degrees := make([]int, 0, len(counts))
	for d := range counts {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	bins := make([]HistogramBin, len(degrees))
	for i, d := range degrees {
		bins[i] = HistogramBin{Lo: d, Hi: d, Count: counts[d]}
	}
	return bins
}

// LogBinnedDegreeHistogram groups degrees into bins whose widths grow by
// the given factor (> 1), the standard presentation of power-law degree
// distributions on log-log axes (the paper's Fig. 2). Degree-0 vertices
// land in a dedicated first bin.
func LogBinnedDegreeHistogram(g *graph.Graph, factor float64) []HistogramBin {
	if factor <= 1 {
		factor = 2
	}
	maxDeg := g.MaxDegree()
	var bins []HistogramBin
	bins = append(bins, HistogramBin{Lo: 0, Hi: 0})
	lo := 1
	for lo <= maxDeg {
		width := int(math.Ceil(float64(lo)*factor)) - lo
		if width < 1 {
			width = 1
		}
		hi := lo + width - 1
		bins = append(bins, HistogramBin{Lo: lo, Hi: hi})
		lo = hi + 1
	}
	for v := 0; v < g.NumVertices(); v++ {
		d := g.Degree(int32(v))
		idx := sort.Search(len(bins), func(i int) bool { return bins[i].Hi >= d })
		bins[idx].Count++
	}
	return bins
}

// PowerLawAlpha estimates the exponent of a power-law degree distribution
// P(d) ~ d^-alpha by maximum likelihood over degrees >= dmin (Newman 2005,
// the paper's power-law reference): alpha = 1 + n / sum ln(d / (dmin-0.5)).
// It returns alpha and the number of vertices used; zero vertices at or
// above dmin yields (0, 0).
func PowerLawAlpha(g *graph.Graph, dmin int) (alpha float64, used int) {
	if dmin < 1 {
		dmin = 1
	}
	var logSum float64
	for v := 0; v < g.NumVertices(); v++ {
		d := g.Degree(int32(v))
		if d >= dmin {
			logSum += math.Log(float64(d) / (float64(dmin) - 0.5))
			used++
		}
	}
	if used == 0 || logSum == 0 {
		return 0, used
	}
	return 1 + float64(used)/logSum, used
}

// ComponentSizeHistogram log-bins a component-size census (sizes, one per
// component) with the given growth factor — GraphCT's "statistical
// distributions of ... component sizes" kernel output. Bins are
// contiguous from size 1 up to the largest component.
func ComponentSizeHistogram(sizes []int64, factor float64) []HistogramBin {
	if factor <= 1 {
		factor = 2
	}
	var maxSize int64 = 1
	for _, s := range sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	var bins []HistogramBin
	lo := 1
	for int64(lo) <= maxSize {
		width := int(math.Ceil(float64(lo)*factor)) - lo
		if width < 1 {
			width = 1
		}
		bins = append(bins, HistogramBin{Lo: lo, Hi: lo + width - 1})
		lo += width
	}
	for _, s := range sizes {
		idx := sort.Search(len(bins), func(i int) bool { return int64(bins[i].Hi) >= s })
		bins[idx].Count++
	}
	return bins
}

// GiniCoefficient measures degree concentration in [0,1]: 0 when all
// degrees are equal, approaching 1 when few vertices hold most edges — a
// compact statement of the paper's 80/20 observation.
func GiniCoefficient(g *graph.Graph) float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(int32(v))
	}
	sort.Ints(deg)
	var cum, weighted float64
	for i, d := range deg {
		cum += float64(d)
		weighted += float64(d) * float64(i+1)
	}
	if cum == 0 {
		return 0
	}
	return (2*weighted/(float64(n)*cum) - float64(n+1)/float64(n))
}

// TopShare returns the fraction of all arc endpoints held by the top
// fraction of vertices by degree (e.g. TopShare(g, 0.2) answers "what share
// of connections involve the top 20% of vertices?").
func TopShare(g *graph.Graph, fraction float64) float64 {
	n := g.NumVertices()
	if n == 0 || g.NumArcs() == 0 {
		return 0
	}
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(int32(v))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(deg)))
	top := int(math.Ceil(fraction * float64(n)))
	if top > n {
		top = n
	}
	var sum int64
	for _, d := range deg[:top] {
		sum += int64(d)
	}
	return float64(sum) / float64(g.NumArcs())
}

// DiameterEstimate holds the result of the sampled-BFS diameter estimator.
type DiameterEstimate struct {
	Estimate    int // Multiplier x LongestPath
	LongestPath int // deepest BFS level observed
	Sources     int
}

// ExactDiameter returns the true diameter of g: the largest eccentricity
// over all vertices (0 for empty graphs; unreachable pairs are ignored, so
// a disconnected graph reports its largest intra-component distance). It
// runs a BFS per vertex — use only where n is modest; the sampled
// estimator exists because this is infeasible at the paper's scales.
func ExactDiameter(g *graph.Graph) int {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	ecc := make([]int, n)
	grp := par.NewGroup(0)
	for v := 0; v < n; v++ {
		v := v
		grp.Go(func() error {
			ecc[v] = bfs.Search(g, int32(v)).Depth
			return nil
		})
	}
	grp.Wait()
	max := 0
	for _, e := range ecc {
		if e > max {
			max = e
		}
	}
	return max
}

// EstimateDiameter reproduces GraphCT's load-time estimator: BFS from
// `samples` randomly selected sources (the paper uses 256) and estimate the
// diameter as multiplier x the longest path found (the paper uses 4x). The
// estimate sizes traversal queues; overestimates waste memory while
// underestimates would make kernels fail, hence the safety factor.
func EstimateDiameter(g *graph.Graph, samples, multiplier int, seed int64) DiameterEstimate {
	// The background context never cancels, so the error is impossible.
	d, _ := EstimateDiameterCtx(context.Background(), g, samples, multiplier, seed)
	return d
}

// EstimateDiameterCtx is EstimateDiameter with cooperative cancellation:
// the context is checked before each sampled BFS source, so a cancelled
// request stops after at most one in-flight BFS per worker instead of
// sweeping all sources.
func EstimateDiameterCtx(ctx context.Context, g *graph.Graph, samples, multiplier int, seed int64) (DiameterEstimate, error) {
	n := g.NumVertices()
	if n == 0 {
		return DiameterEstimate{}, nil
	}
	if samples <= 0 {
		samples = 256
	}
	if samples > n {
		samples = n
	}
	if multiplier <= 0 {
		multiplier = 4
	}
	rng := rand.New(rand.NewSource(seed))
	srcs := make([]int32, samples)
	perm := rng.Perm(n)
	for i := range srcs {
		srcs[i] = int32(perm[i])
	}
	depths := make([]int, samples)
	grp := par.NewGroup(0)
	for i, s := range srcs {
		if ctx.Err() != nil {
			break // stop scheduling; in-flight searches finish
		}
		i, s := i, s
		grp.Go(func() error {
			if err := ctx.Err(); err != nil {
				return err
			}
			depths[i] = bfs.Search(g, s).Depth
			return nil
		})
	}
	if err := grp.Wait(); err != nil {
		return DiameterEstimate{}, err
	}
	if err := ctx.Err(); err != nil {
		return DiameterEstimate{}, err
	}
	longest := 0
	for _, d := range depths {
		if d > longest {
			longest = d
		}
	}
	return DiameterEstimate{Estimate: multiplier * longest, LongestPath: longest, Sources: samples}, nil
}
