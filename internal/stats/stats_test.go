package stats

import (
	"math"
	"testing"
	"testing/quick"

	"graphct/internal/gen"
	"graphct/internal/graph"
)

func TestDegreesRing(t *testing.T) {
	s := Degrees(gen.Ring(10))
	if s.Mean != 2 || s.Variance != 0 || s.Min != 2 || s.Max != 2 || s.N != 10 {
		t.Fatalf("ring stats = %+v", s)
	}
}

func TestDegreesStar(t *testing.T) {
	s := Degrees(gen.Star(5))
	// degrees: 4,1,1,1,1 -> mean 8/5, var = (16 + 4*1)/5 - (8/5)^2
	wantMean := 8.0 / 5
	wantVar := 20.0/5 - wantMean*wantMean
	if math.Abs(s.Mean-wantMean) > 1e-12 || math.Abs(s.Variance-wantVar) > 1e-12 {
		t.Fatalf("star stats = %+v", s)
	}
	if s.Min != 1 || s.Max != 4 {
		t.Fatalf("star min/max = %d/%d", s.Min, s.Max)
	}
}

func TestDegreesEmpty(t *testing.T) {
	s := Degrees(graph.Empty(0, false))
	if s.N != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
}

func TestDegreeHistogram(t *testing.T) {
	bins := DegreeHistogram(gen.Star(6))
	if len(bins) != 2 {
		t.Fatalf("bins = %v", bins)
	}
	if bins[0].Lo != 1 || bins[0].Count != 5 || bins[1].Lo != 5 || bins[1].Count != 1 {
		t.Fatalf("bins = %v", bins)
	}
}

func TestLogBinnedHistogram(t *testing.T) {
	g := gen.PreferentialAttachment(500, 2, 1)
	bins := LogBinnedDegreeHistogram(g, 2)
	var total int64
	prevHi := -1
	for _, b := range bins {
		if b.Lo != prevHi+1 {
			t.Fatalf("bins not contiguous: %v", bins)
		}
		prevHi = b.Hi
		total += b.Count
	}
	if total != 500 {
		t.Fatalf("histogram total = %d, want 500", total)
	}
	if bins[len(bins)-1].Hi < g.MaxDegree() {
		t.Fatal("histogram does not cover max degree")
	}
	// Invalid factor falls back.
	if got := LogBinnedDegreeHistogram(gen.Path(4), 0.5); len(got) == 0 {
		t.Fatal("fallback factor failed")
	}
}

func TestPowerLawAlphaOnSyntheticPowerLaw(t *testing.T) {
	// Preferential attachment yields alpha ~ 3 in theory; accept a broad
	// band — the point is a plausible heavy-tail exponent, not precision.
	g := gen.PreferentialAttachment(20000, 3, 7)
	alpha, used := PowerLawAlpha(g, 5)
	if used == 0 {
		t.Fatal("no vertices used in fit")
	}
	if alpha < 1.8 || alpha > 4.0 {
		t.Fatalf("alpha = %v, want heavy-tail range [1.8, 4.0]", alpha)
	}
}

func TestPowerLawAlphaDegenerate(t *testing.T) {
	if a, used := PowerLawAlpha(graph.Empty(5, false), 1); a != 0 || used != 0 {
		t.Fatalf("empty fit = %v/%d", a, used)
	}
	// dmin clamped to 1.
	if _, used := PowerLawAlpha(gen.Ring(5), 0); used != 5 {
		t.Fatal("dmin clamp failed")
	}
}

func TestGiniUniformZero(t *testing.T) {
	if gc := GiniCoefficient(gen.Ring(20)); math.Abs(gc) > 1e-9 {
		t.Fatalf("ring gini = %v, want 0", gc)
	}
	if gc := GiniCoefficient(graph.Empty(3, false)); gc != 0 {
		t.Fatalf("zero-degree gini = %v", gc)
	}
}

func TestGiniSkewedPositive(t *testing.T) {
	star := GiniCoefficient(gen.Star(50))
	ring := GiniCoefficient(gen.Ring(50))
	if star <= ring || star <= 0.3 {
		t.Fatalf("star gini %v should greatly exceed ring %v", star, ring)
	}
}

func TestTopShare(t *testing.T) {
	// Star(10): hub holds 9 of 18 arc endpoints = 50%.
	got := TopShare(gen.Star(10), 0.1)
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("top-10%% share = %v, want 0.5", got)
	}
	if TopShare(gen.Star(10), 1.0) != 1.0 {
		t.Fatal("full share != 1")
	}
	if TopShare(graph.Empty(4, false), 0.5) != 0 {
		t.Fatal("empty share != 0")
	}
}

func TestEstimateDiameterPath(t *testing.T) {
	g := gen.Path(100)
	d := EstimateDiameter(g, 100, 1, 1) // all sources, no multiplier
	if d.LongestPath != 99 {
		t.Fatalf("longest path = %d, want 99", d.LongestPath)
	}
	if d.Estimate != 99 {
		t.Fatalf("estimate = %d", d.Estimate)
	}
}

func TestEstimateDiameterDefaults(t *testing.T) {
	g := gen.Ring(50)
	d := EstimateDiameter(g, 0, 0, 1)
	if d.Sources != 50 { // 256 clamped to n
		t.Fatalf("sources = %d, want 50", d.Sources)
	}
	if d.LongestPath != 25 {
		t.Fatalf("ring longest = %d, want 25", d.LongestPath)
	}
	if d.Estimate != 100 {
		t.Fatalf("estimate = %d, want 4x25", d.Estimate)
	}
	if got := EstimateDiameter(graph.Empty(0, false), 5, 4, 1); got.Estimate != 0 {
		t.Fatal("empty graph estimate != 0")
	}
}

func TestComponentSizeHistogram(t *testing.T) {
	sizes := []int64{1, 1, 1, 2, 3, 8, 100}
	bins := ComponentSizeHistogram(sizes, 2)
	var total int64
	prevHi := 0
	for _, b := range bins {
		if b.Lo != prevHi+1 {
			t.Fatalf("bins not contiguous: %v", bins)
		}
		prevHi = b.Hi
		total += b.Count
	}
	if total != int64(len(sizes)) {
		t.Fatalf("histogram total = %d", total)
	}
	if bins[0].Lo != 1 || bins[0].Count != 3 {
		t.Fatalf("singleton bin wrong: %v", bins[0])
	}
	if bins[len(bins)-1].Hi < 100 {
		t.Fatal("largest component not covered")
	}
	// Bad factor falls back.
	if got := ComponentSizeHistogram([]int64{1}, 0); len(got) == 0 {
		t.Fatal("factor fallback failed")
	}
}

func TestExactDiameter(t *testing.T) {
	if d := ExactDiameter(gen.Path(10)); d != 9 {
		t.Fatalf("path diameter = %d", d)
	}
	if d := ExactDiameter(gen.Ring(10)); d != 5 {
		t.Fatalf("ring diameter = %d", d)
	}
	if d := ExactDiameter(gen.Star(20)); d != 2 {
		t.Fatalf("star diameter = %d", d)
	}
	if d := ExactDiameter(graph.Empty(0, false)); d != 0 {
		t.Fatalf("empty diameter = %d", d)
	}
	// Disconnected: largest intra-component distance.
	if d := ExactDiameter(gen.Disjoint(gen.Path(4), gen.Path(7))); d != 6 {
		t.Fatalf("disjoint diameter = %d", d)
	}
}

// Property: sampled longest path never exceeds the exact diameter.
func TestPropertyEstimateBoundedByExact(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(60, 150, seed)
		exact := ExactDiameter(g)
		est := EstimateDiameter(g, 10, 1, seed)
		return est.LongestPath <= exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: the 4x sampled estimate never underestimates the eccentricity
// of any sampled source, and sampling all vertices bounds the true diameter
// from below by LongestPath.
func TestPropertyDiameterBounds(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(80, 200, seed)
		d := EstimateDiameter(g, 80, 4, seed)
		return d.Estimate >= d.LongestPath && d.LongestPath >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram counts always sum to the vertex count.
func TestPropertyHistogramPartition(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(70, 150, seed)
		var exact, logb int64
		for _, b := range DegreeHistogram(g) {
			exact += b.Count
		}
		for _, b := range LogBinnedDegreeHistogram(g, 2) {
			logb += b.Count
		}
		return exact == 70 && logb == 70
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
