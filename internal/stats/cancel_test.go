package stats

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"graphct/internal/gen"
)

const cancelBudget = 500 * time.Millisecond

func checkGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestEstimateDiameterCtxCancellation(t *testing.T) {
	// 256 sampled BFS sweeps over this graph run for well over the cancel
	// budget, so the mid-run cancel lands while sources are still queued.
	g := gen.PreferentialAttachment(30000, 8, 1)

	_, _ = EstimateDiameterCtx(context.Background(), g, 1, 4, 1)
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	d, err := EstimateDiameterCtx(ctx, g, 256, 4, 1)
	if !errors.Is(err, context.Canceled) || d.Estimate != 0 {
		t.Fatalf("pre-cancelled: %+v err %v, want zero estimate and context.Canceled", d, err)
	}
	if el := time.Since(start); el > cancelBudget {
		t.Fatalf("pre-cancelled call took %v, budget %v", el, cancelBudget)
	}

	ctx, cancel = context.WithCancel(context.Background())
	timer := time.AfterFunc(10*time.Millisecond, cancel)
	defer timer.Stop()
	start = time.Now()
	d, err = EstimateDiameterCtx(ctx, g, 256, 4, 1)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) || d.Estimate != 0 {
		t.Fatalf("mid-run cancel: %+v err %v, want zero estimate and context.Canceled", d, err)
	}
	if elapsed > 10*time.Millisecond+cancelBudget {
		t.Fatalf("mid-run cancel returned after %v, budget %v", elapsed, cancelBudget)
	}
	checkGoroutines(t, baseline)
}
