package tweets

import (
	"sort"
	"strings"

	"graphct/internal/graph"
)

// GraphStats summarizes a tweet stream's interaction graph, providing the
// rows of the paper's Table III.
type GraphStats struct {
	Tweets             int   // tweets in the stream
	TweetsWithMentions int   // tweets that mention at least one user
	Users              int   // distinct authors plus mentioned users
	UniqueInteractions int64 // dedup'd directed author->mentioned edges, self loops excluded
	SelfReferences     int   // tweets whose author mentions themself
	Retweets           int   // tweets following the RT @ convention
}

// UserGraph is a tweet stream projected to its user-interaction graph:
// vertices are users, and a directed edge u->v records that u posted a
// message mentioning v ("duplicate user interactions are thrown out").
type UserGraph struct {
	Graph *graph.Graph // directed mention graph
	Names []string     // vertex id -> handle
	IDs   map[string]int32
	Stats GraphStats
}

// Build constructs the user-interaction graph of a tweet stream. Handles
// are case-insensitive. Self mentions are counted in Stats but excluded
// from the graph (they carry no brokerage information and would perturb
// the path-based kernels).
func Build(ts []Tweet) *UserGraph {
	ids := make(map[string]int32)
	var names []string
	intern := func(handle string) int32 {
		h := strings.ToLower(handle)
		if id, ok := ids[h]; ok {
			return id
		}
		id := int32(len(names))
		ids[h] = id
		names = append(names, h)
		return id
	}
	var edges []graph.Edge
	st := GraphStats{Tweets: len(ts)}
	for _, t := range ts {
		author := intern(t.Author)
		mentions := Mentions(t.Text)
		if len(mentions) > 0 {
			st.TweetsWithMentions++
		}
		if IsRetweet(t.Text) {
			st.Retweets++
		}
		self := false
		for _, m := range mentions {
			target := intern(m)
			if target == author {
				self = true
				continue
			}
			edges = append(edges, graph.Edge{U: author, V: target})
		}
		if self {
			st.SelfReferences++
		}
	}
	g, err := graph.FromEdges(len(names), edges, graph.Options{Directed: true})
	if err != nil {
		panic("tweets: interned ids out of range: " + err.Error())
	}
	st.Users = len(names)
	st.UniqueInteractions = g.NumArcs()
	return &UserGraph{Graph: g, Names: names, IDs: ids, Stats: st}
}

// Undirected returns the undirected projection used by the path-based
// kernels.
func (ug *UserGraph) Undirected() *graph.Graph { return ug.Graph.Undirected() }

// Lookup returns the vertex for a handle (case-insensitive) and whether it
// exists.
func (ug *UserGraph) Lookup(handle string) (int32, bool) {
	id, ok := ug.IDs[strings.ToLower(handle)]
	return id, ok
}

// Handles maps a vertex list (e.g. a centrality top-k) back to handles.
func (ug *UserGraph) Handles(vs []int32) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = ug.Names[v]
	}
	return out
}

// SubgraphStats recomputes Table III's user/interaction counts for a
// subgraph given the subgraph and its orig-id mapping (e.g. the LWCC):
// users with any incident edge plus isolated vertices are all counted, as
// vertices exist only where interactions did.
func SubgraphStats(sub *graph.Graph) (users int, interactions int64) {
	return sub.NumVertices(), sub.NumArcs()
}

// MentionCounts returns, per vertex, how many distinct users it mentions
// (out-degree) and is mentioned by (in-degree), for the degree analyses.
func (ug *UserGraph) MentionCounts() (out, in []int64) {
	n := ug.Graph.NumVertices()
	out = make([]int64, n)
	in = make([]int64, n)
	for v := 0; v < n; v++ {
		out[v] = int64(ug.Graph.Degree(int32(v)))
		for _, w := range ug.Graph.Neighbors(int32(v)) {
			in[w]++
		}
	}
	return out, in
}

// TopMentioned returns the k most-mentioned handles (by in-degree),
// the paper's "broadcast vertices" — media and government outlets.
func (ug *UserGraph) TopMentioned(k int) []string {
	_, in := ug.MentionCounts()
	idx := make([]int32, len(in))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		if in[idx[a]] != in[idx[b]] {
			return in[idx[a]] > in[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	return ug.Handles(idx[:k])
}
