package tweets

import (
	"fmt"
	"math/rand"
	"strings"
)

// CorpusOptions parameterizes the synthetic tweet-stream generator that
// substitutes for the paper's Spinn3r harvests. The mix of message kinds
// reproduces the structures the paper reports: tree-shaped broadcast
// (retweets of hub content, occasionally re-broadcast another retweeter),
// small reciprocal conversations, self references ("echo chamber"), bait
// spam riding the trending hashtag (removed by FilterSpam, as the paper's
// non-spam harvests were cleaned), and plain on-topic chatter with no
// mentions.
type CorpusOptions struct {
	Seed   int64
	Users  int    // size of the ordinary-user pool
	Hubs   int    // broadcast hubs (media/government analogues)
	Tweets int    // messages to emit
	Topic  string // hashtag & keyword woven into the text, e.g. "h1n1"

	RetweetFrac  float64 // broadcast-tree retweets
	ConvFrac     float64 // conversation replies (reciprocal mentions)
	SelfFrac     float64 // self-referential updates
	SpamFrac     float64 // bait spam latching onto the trending topic
	DeepTreeProb float64 // retweet cites an earlier retweeter instead of the hub

	ConvGroups    int // number of conversation clusters
	ConvGroupSize int // participants per cluster

	WeekLo, WeekHi int // weeks the stream spans; volumes follow the crisis model
}

// hubFlavors seed the generated hub handles so top-ranked actors read like
// the media and government outlets of the paper's Table IV.
var hubFlavors = []string{
	"cdcflu", "fluhealthgov", "nationnews", "metro_times", "capitolwire",
	"channel11news", "citygazette", "stormwatch", "newsradio680", "thedailybeat",
}

// Generate emits a deterministic synthetic tweet stream.
func Generate(opt CorpusOptions) []Tweet {
	if opt.Users < 2 {
		opt.Users = 2
	}
	if opt.Hubs < 1 {
		opt.Hubs = 1
	}
	if opt.ConvGroupSize < 2 {
		opt.ConvGroupSize = 2
	}
	if opt.ConvGroups < 1 {
		opt.ConvGroups = 1
	}
	if opt.WeekHi < opt.WeekLo {
		opt.WeekHi = opt.WeekLo
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	hubs := make([]string, opt.Hubs)
	for i := range hubs {
		if i < len(hubFlavors) {
			hubs[i] = fmt.Sprintf("%s_%s", hubFlavors[i], opt.Topic)
		} else {
			hubs[i] = fmt.Sprintf("outlet%03d_%s", i, opt.Topic)
		}
	}
	users := make([]string, opt.Users)
	for i := range users {
		users[i] = fmt.Sprintf("user%06d", i)
	}

	// Conversation clusters: disjoint groups of ordinary users.
	groups := make([][]string, opt.ConvGroups)
	perm := rng.Perm(opt.Users)
	pi := 0
	for gi := range groups {
		grp := make([]string, 0, opt.ConvGroupSize)
		for len(grp) < opt.ConvGroupSize && pi < len(perm) {
			grp = append(grp, users[perm[pi]])
			pi++
		}
		if len(grp) < 2 {
			grp = []string{users[0], users[1%len(users)]}
		}
		groups[gi] = grp
	}

	// Weekly volume weights follow the crisis-attention model.
	weeks := make([]int, 0, opt.WeekHi-opt.WeekLo+1)
	weights := make([]float64, 0, cap(weeks))
	var weightSum float64
	for wk := opt.WeekLo; wk <= opt.WeekHi; wk++ {
		weeks = append(weeks, wk)
		w := ModelVolume(wk, opt.WeekLo)
		weights = append(weights, w)
		weightSum += w
	}
	pickWeek := func() int {
		r := rng.Float64() * weightSum
		for i, w := range weights {
			if r < w {
				return weeks[i]
			}
			r -= w
		}
		return weeks[len(weeks)-1]
	}

	// Zipf popularity for hubs; authors are drawn mostly uniformly (most
	// Twitter users appear once — the paper's Table III has more users
	// than unique interactions) with a small power-user subset supplying
	// the active tail.
	zipfHub := rand.NewZipf(rng, 1.5, 1, uint64(opt.Hubs-1+1))
	activeSet := opt.Users/50 + 1
	pickAuthor := func() string {
		if rng.Float64() < 0.25 {
			return users[rng.Intn(activeSet)]
		}
		return users[rng.Intn(opt.Users)]
	}

	// retweeters[h] tracks who already relayed hub h, enabling deep trees.
	retweeters := make([][]string, opt.Hubs)

	headlines := []string{
		"officials issue new guidance on %s",
		"live updates: %s situation developing",
		"what you need to know about %s today",
		"%s: our full report",
		"breaking: new %s numbers released",
	}
	tag := "#" + opt.Topic

	out := make([]Tweet, 0, opt.Tweets)
	for i := 0; i < opt.Tweets; i++ {
		t := Tweet{ID: int64(i), Week: pickWeek()}
		r := rng.Float64()
		switch {
		case r < opt.RetweetFrac:
			h := int(zipfHub.Uint64())
			if h >= opt.Hubs {
				h = opt.Hubs - 1
			}
			author := pickAuthor()
			source := hubs[h]
			if len(retweeters[h]) > 0 && rng.Float64() < opt.DeepTreeProb {
				source = retweeters[h][rng.Intn(len(retweeters[h]))]
			}
			head := fmt.Sprintf(headlines[rng.Intn(len(headlines))], opt.Topic)
			t.Author = author
			t.Text = fmt.Sprintf("RT @%s %s %s", source, head, tag)
			retweeters[h] = append(retweeters[h], author)
		case r < opt.RetweetFrac+opt.ConvFrac:
			grp := groups[rng.Intn(len(groups))]
			a := rng.Intn(len(grp))
			b := rng.Intn(len(grp) - 1)
			if b >= a {
				b++
			}
			t.Author = grp[a]
			t.Text = fmt.Sprintf("@%s i take issue with that point about %s %s", grp[b], opt.Topic, tag)
		case r < opt.RetweetFrac+opt.ConvFrac+opt.SelfFrac:
			author := pickAuthor()
			t.Author = author
			t.Text = fmt.Sprintf("@%s reminder to self: track %s updates %s", author, opt.Topic, tag)
		case r < opt.RetweetFrac+opt.ConvFrac+opt.SelfFrac+opt.SpamFrac:
			// Spam rides the trending hashtag, baits a random victim,
			// and repeats a template with a link — exactly what the
			// spam filter keys on.
			victim := users[rng.Intn(opt.Users)]
			t.Author = fmt.Sprintf("promo%04d", rng.Intn(200))
			t.Text = fmt.Sprintf("@%s get free followers now click http://sp.am/%04d %s", victim, rng.Intn(50), tag)
		default:
			author := pickAuthor()
			t.Author = author
			t.Text = fmt.Sprintf("thinking about %s again today %s", opt.Topic, tag)
		}
		out = append(out, t)
	}
	return out
}

// Presets approximating the paper's three harvests, scaled by a factor so
// the full pipeline runs on commodity hardware at scale <= 1 and at paper
// size with scale = 1.

// H1N1Corpus models the September 2009 influenza keyword harvest
// (Table III: 46,457 users, 36,886 unique interactions).
func H1N1Corpus(scale float64, seed int64) CorpusOptions {
	return CorpusOptions{
		Seed:          seed,
		Users:         scaleInt(90000, scale),
		Hubs:          30,
		Tweets:        scaleInt(100000, scale),
		Topic:         "h1n1",
		RetweetFrac:   0.42,
		ConvFrac:      0.10,
		SelfFrac:      0.03,
		SpamFrac:      0.04,
		DeepTreeProb:  0.25,
		ConvGroups:    scaleInt(400, scale),
		ConvGroupSize: 4,
		WeekLo:        36,
		WeekHi:        39,
	}
}

// AtlFloodCorpus models the five-day #atlflood harvest
// (Table III: 2,283 users, 2,774 unique interactions).
func AtlFloodCorpus(scale float64, seed int64) CorpusOptions {
	return CorpusOptions{
		Seed:          seed,
		Users:         scaleInt(3600, scale),
		Hubs:          12,
		Tweets:        scaleInt(6200, scale),
		Topic:         "atlflood",
		RetweetFrac:   0.45,
		ConvFrac:      0.12,
		SelfFrac:      0.03,
		SpamFrac:      0.03,
		DeepTreeProb:  0.2,
		ConvGroups:    scaleInt(60, scale),
		ConvGroupSize: 3,
		WeekLo:        38,
		WeekHi:        39,
	}
}

// Sept1Corpus models the all-public-tweets harvest of 1 September 2009
// (Table III: 735,465 users, 1,020,671 unique interactions). The default
// experiment harness runs it scaled down; scale = 1 reproduces paper size.
func Sept1Corpus(scale float64, seed int64) CorpusOptions {
	return CorpusOptions{
		Seed:          seed,
		Users:         scaleInt(1050000, scale),
		Hubs:          400,
		Tweets:        scaleInt(2300000, scale),
		Topic:         "sept",
		RetweetFrac:   0.42,
		ConvFrac:      0.24,
		SelfFrac:      0.04,
		SpamFrac:      0.05,
		DeepTreeProb:  0.3,
		ConvGroups:    scaleInt(60000, scale),
		ConvGroupSize: 3,
		WeekLo:        36,
		WeekHi:        36,
	}
}

func scaleInt(v int, scale float64) int {
	if scale <= 0 {
		scale = 1
	}
	s := int(float64(v) * scale)
	if s < 4 {
		s = 4
	}
	return s
}

// ExampleConversation renders a short conversation thread like the paper's
// Fig. 1, for the examples and docs.
func ExampleConversation(topic string) []Tweet {
	mk := func(id int64, author, text string) Tweet {
		return Tweet{ID: id, Author: author, Text: text, Week: 38}
	}
	return []Tweet{
		mk(1, "reporter_a", fmt.Sprintf("every yr thousands are affected by %s. this COULD be higher #"+topic, topic)),
		mk(2, "reporter_a", fmt.Sprintf("@analyst_b asserting that hand-washing advice is all that's being done about %s is just not true", topic)),
		mk(3, "analyst_b", fmt.Sprintf("RT @reporter_a officials publish new %s guidance <= glad i listened to those tips #%s", topic, strings.ToLower(topic))),
		mk(4, "reporter_a", fmt.Sprintf("@citizen_c as someone with family at risk i will clearly take issue with that claim about %s", topic)),
		mk(5, "citizen_c", fmt.Sprintf("@reporter_a fair point, updating my thread on %s now #%s", topic, strings.ToLower(topic))),
	}
}
