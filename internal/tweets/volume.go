package tweets

import "math"

// PaperTableII returns the paper's Table II: English non-spam articles
// mentioning h1n1/swine flu per week of 2009, weeks 17-24 — the reference
// series the synthetic volume model is compared against.
func PaperTableII() (weeks []int, articles []int) {
	weeks = []int{17, 18, 19, 20, 21, 22, 23, 24}
	articles = []int{5591, 108038, 61341, 26256, 19224, 37938, 14393, 27502}
	return weeks, articles
}

// ModelVolume is the crisis-attention volume model: near-zero chatter
// before the outbreak week, an explosive spike the week after ("abrupt
// explosion of social media articles"), exponential decay of attention,
// and a secondary echo bump as the story re-enters the news cycle. week0
// anchors the outbreak; the returned value is a relative weight.
func ModelVolume(week, week0 int) float64 {
	d := week - week0
	if d < 0 {
		return 50
	}
	const (
		spike    = 100000.0
		decay    = 0.55 // weekly retention of attention
		echoAt   = 5    // weeks after outbreak the echo bump lands
		echoAmp  = 0.3  // echo size relative to the original spike
		baseline = 2000.0
	)
	v := baseline
	if d == 0 {
		return baseline + spike*0.05 // leading edge: the story breaks mid-week
	}
	v += spike * math.Pow(decay, float64(d-1))
	if d == echoAt {
		v += spike * echoAmp
	}
	return v
}

// ModelTableII generates the synthetic counterpart of Table II: article
// counts for weeks 17-24 anchored at outbreak week 17.
func ModelTableII() (weeks []int, articles []int) {
	weeks = []int{17, 18, 19, 20, 21, 22, 23, 24}
	articles = make([]int, len(weeks))
	for i, wk := range weeks {
		articles[i] = int(ModelVolume(wk, 17))
	}
	return weeks, articles
}
