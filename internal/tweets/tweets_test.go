package tweets

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMentions(t *testing.T) {
	cases := []struct {
		text string
		want []string
	}{
		{"@foo hello @Bar", []string{"foo", "bar"}},
		{"no mentions here", nil},
		{"email user@example.com is not a mention", nil},
		{"@a@b chained", []string{"a"}}, // "@b" is email-like, not a mention
		{"punct (@paren) [@brack]", []string{"paren", "brack"}},
		{"trailing @", nil},
		{"@under_score9 ok", []string{"under_score9"}},
		{"RT @hub story time", []string{"hub"}},
		{"@dup and @dup again", []string{"dup", "dup"}},
	}
	for _, tc := range cases {
		got := Mentions(tc.text)
		if len(got) != len(tc.want) {
			t.Errorf("Mentions(%q) = %v, want %v", tc.text, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("Mentions(%q) = %v, want %v", tc.text, got, tc.want)
			}
		}
	}
}

func TestHashtags(t *testing.T) {
	got := Hashtags("flooding downtown #atlflood stay safe #ATL")
	if len(got) != 2 || got[0] != "atlflood" || got[1] != "atl" {
		t.Fatalf("Hashtags = %v", got)
	}
	if Hashtags("no tags") != nil {
		t.Fatal("phantom hashtags")
	}
}

func TestIsRetweet(t *testing.T) {
	if !IsRetweet("RT @cnn big news") || !IsRetweet("  rt @cnn lower") {
		t.Fatal("retweet not detected")
	}
	if IsRetweet("@cnn RT this please") || IsRetweet("RT without mention") {
		t.Fatal("false retweet")
	}
}

func TestHasKeywordAndFilter(t *testing.T) {
	ts := []Tweet{
		{ID: 1, Author: "a", Text: "worried about H1N1 tonight"},
		{ID: 2, Author: "b", Text: "lovely weather"},
		{ID: 3, Author: "c", Text: "#swineflu trending"},
	}
	got := FilterKeyword(ts, []string{"flu", "h1n1"})
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 3 {
		t.Fatalf("FilterKeyword = %v", got)
	}
	if HasKeyword("anything", []string{""}) {
		t.Fatal("empty keyword matched")
	}
}

func TestFilterWeek(t *testing.T) {
	ts := []Tweet{{ID: 1, Week: 36}, {ID: 2, Week: 38}, {ID: 3, Week: 40}}
	got := FilterWeek(ts, 37, 39)
	if len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("FilterWeek = %v", got)
	}
}

func TestBuildBasic(t *testing.T) {
	ts := []Tweet{
		{ID: 1, Author: "Alice", Text: "hi @bob and @carol"},
		{ID: 2, Author: "bob", Text: "@alice hello back"},
		{ID: 3, Author: "carol", Text: "no mentions"},
		{ID: 4, Author: "dave", Text: "@dave talking to myself"},
		{ID: 5, Author: "alice", Text: "hi @bob again"}, // duplicate interaction
	}
	ug := Build(ts)
	st := ug.Stats
	if st.Tweets != 5 || st.TweetsWithMentions != 4 || st.SelfReferences != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Users != 4 {
		t.Fatalf("users = %d, want 4", st.Users)
	}
	// alice->bob (dedup'd), alice->carol, bob->alice; dave self loop dropped.
	if st.UniqueInteractions != 3 {
		t.Fatalf("interactions = %d, want 3", st.UniqueInteractions)
	}
	a, _ := ug.Lookup("ALICE")
	b, _ := ug.Lookup("bob")
	if !ug.Graph.HasEdge(a, b) || !ug.Graph.HasEdge(b, a) {
		t.Fatal("mention edges missing")
	}
	if _, ok := ug.Lookup("nobody"); ok {
		t.Fatal("phantom user")
	}
}

func TestBuildCaseInsensitive(t *testing.T) {
	ug := Build([]Tweet{
		{ID: 1, Author: "Foo", Text: "@BAR hello"},
		{ID: 2, Author: "foo", Text: "@bar again"},
	})
	if ug.Stats.Users != 2 || ug.Stats.UniqueInteractions != 1 {
		t.Fatalf("case handling wrong: %+v", ug.Stats)
	}
}

func TestBuildEmpty(t *testing.T) {
	ug := Build(nil)
	if ug.Stats.Users != 0 || ug.Graph.NumVertices() != 0 {
		t.Fatal("empty build wrong")
	}
}

func TestHandles(t *testing.T) {
	ug := Build([]Tweet{{ID: 1, Author: "a", Text: "@b yo"}})
	hs := ug.Handles([]int32{1, 0})
	if hs[0] != "b" || hs[1] != "a" {
		t.Fatalf("Handles = %v", hs)
	}
}

func TestMentionCountsAndTopMentioned(t *testing.T) {
	ug := Build([]Tweet{
		{ID: 1, Author: "u1", Text: "RT @hub news"},
		{ID: 2, Author: "u2", Text: "RT @hub news"},
		{ID: 3, Author: "u3", Text: "RT @hub news"},
		{ID: 4, Author: "u1", Text: "@u2 chat"},
	})
	out, in := ug.MentionCounts()
	hub, _ := ug.Lookup("hub")
	if in[hub] != 3 || out[hub] != 0 {
		t.Fatalf("hub counts in=%d out=%d", in[hub], out[hub])
	}
	top := ug.TopMentioned(1)
	if len(top) != 1 || top[0] != "hub" {
		t.Fatalf("TopMentioned = %v", top)
	}
	if got := ug.TopMentioned(100); len(got) != ug.Stats.Users {
		t.Fatal("TopMentioned clamp failed")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	opt := AtlFloodCorpus(0.2, 42)
	a := Generate(opt)
	b := Generate(opt)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tweet %d differs", i)
		}
	}
}

func TestGenerateMix(t *testing.T) {
	ts := Generate(H1N1Corpus(0.1, 7))
	if len(ts) == 0 {
		t.Fatal("no tweets generated")
	}
	var rts, convs, selfs, plain int
	for _, tw := range ts {
		ms := Mentions(tw.Text)
		switch {
		case IsRetweet(tw.Text):
			rts++
		case len(ms) == 1 && ms[0] == strings.ToLower(tw.Author):
			selfs++
		case len(ms) > 0:
			convs++
		default:
			plain++
		}
		if !HasKeyword(tw.Text, []string{"h1n1"}) {
			t.Fatalf("off-topic tweet %q", tw.Text)
		}
		if tw.Week < 36 || tw.Week > 39 {
			t.Fatalf("week %d out of range", tw.Week)
		}
	}
	n := float64(len(ts))
	if float64(rts)/n < 0.3 || float64(rts)/n > 0.55 {
		t.Fatalf("retweet fraction %v off target", float64(rts)/n)
	}
	if convs == 0 || selfs == 0 || plain == 0 {
		t.Fatalf("missing message kinds: conv=%d self=%d plain=%d", convs, selfs, plain)
	}
}

func TestGenerateGraphShape(t *testing.T) {
	ug := Build(Generate(H1N1Corpus(0.1, 3)))
	if ug.Stats.Users < 100 {
		t.Fatalf("too few users: %d", ug.Stats.Users)
	}
	// Hubs dominate in-degree: the most mentioned user should hold far
	// more than the mean.
	_, in := ug.MentionCounts()
	var max, sum int64
	for _, c := range in {
		sum += c
		if c > max {
			max = c
		}
	}
	if float64(max) < 10*float64(sum)/float64(len(in)) {
		t.Fatalf("no broadcast hubs: max in-degree %d, mean %f", max, float64(sum)/float64(len(in)))
	}
	// Reciprocal core exists (conversations) and is much smaller.
	core := ug.Graph.ReciprocalCore()
	coreEdges := core.NumEdges()
	if coreEdges == 0 {
		t.Fatal("no conversations in corpus")
	}
	if coreEdges*10 > ug.Graph.NumArcs() {
		t.Fatalf("reciprocal core too large: %d of %d", coreEdges, ug.Graph.NumArcs())
	}
	if ug.Stats.SelfReferences == 0 {
		t.Fatal("no self references")
	}
}

func TestGenerateDegenerateOptions(t *testing.T) {
	ts := Generate(CorpusOptions{Seed: 1, Users: 0, Hubs: 0, Tweets: 10, Topic: "x", ConvFrac: 1})
	if len(ts) != 10 {
		t.Fatalf("degenerate options produced %d tweets", len(ts))
	}
	Build(ts) // must not panic
}

func TestPaperTableII(t *testing.T) {
	weeks, articles := PaperTableII()
	if len(weeks) != 8 || len(articles) != 8 {
		t.Fatal("table II shape wrong")
	}
	if articles[1] != 108038 {
		t.Fatal("table II values wrong")
	}
}

func TestModelTableIIShape(t *testing.T) {
	weeks, articles := ModelTableII()
	if len(weeks) != 8 {
		t.Fatal("model weeks wrong")
	}
	// Shape assertions mirroring the paper: spike at week 18, monotone
	// decay through week 21, echo bump at week 22, decline after.
	peak := 1
	for i, a := range articles {
		if a > articles[peak] {
			peak = i
		}
	}
	if weeks[peak] != 18 {
		t.Fatalf("peak at week %d, want 18", weeks[peak])
	}
	if !(articles[1] > articles[2] && articles[2] > articles[3] && articles[3] > articles[4]) {
		t.Fatalf("no monotone decay: %v", articles)
	}
	if !(articles[5] > articles[4] && articles[5] > articles[6]) {
		t.Fatalf("no echo bump at week 22: %v", articles)
	}
	if articles[0] >= articles[1]/5 {
		t.Fatalf("week 17 should be far below the spike: %v", articles)
	}
}

func TestModelVolumePreOutbreak(t *testing.T) {
	if ModelVolume(10, 17) >= ModelVolume(17, 17) {
		t.Fatal("pre-outbreak volume should be lowest")
	}
}

func TestExampleConversation(t *testing.T) {
	conv := ExampleConversation("h1n1")
	if len(conv) < 4 {
		t.Fatal("conversation too short")
	}
	ug := Build(conv)
	core := ug.Graph.ReciprocalCore()
	if core.NumEdges() == 0 {
		t.Fatal("example conversation has no reciprocal pair")
	}
}

// Property: Mentions never returns handles containing illegal characters
// and every extracted handle actually appears in the text.
func TestPropertyMentionsWellFormed(t *testing.T) {
	f := func(raw string) bool {
		for _, m := range Mentions(raw) {
			if m == "" {
				return false
			}
			for i := 0; i < len(m); i++ {
				if !isHandleChar(m[i]) {
					return false
				}
			}
			if !strings.Contains(strings.ToLower(raw), "@"+m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Build's unique interaction count never exceeds total mention
// instances and the graph validates.
func TestPropertyBuildConsistent(t *testing.T) {
	f := func(seed int64) bool {
		ts := Generate(AtlFloodCorpus(0.1, seed))
		ug := Build(ts)
		if ug.Graph.Validate() != nil {
			return false
		}
		var mentionInstances int64
		for _, tw := range ts {
			mentionInstances += int64(len(Mentions(tw.Text)))
		}
		return ug.Stats.UniqueInteractions <= mentionInstances
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
