// Package tweets models the paper's Twitter pipeline: tweets carrying
// @mentions and #hashtags, a parser that extracts them, a builder that
// turns a tweet stream into the user-to-user interaction graph of Table
// III, and a synthetic corpus generator substituting for the Spinn3r feed —
// it emits the same structural mix the paper describes (broadcast trees,
// conversations, self references and noise) so every downstream analysis
// exercises the same code paths.
package tweets

import "strings"

// Tweet is one microblog message.
type Tweet struct {
	ID     int64
	Author string // handle without the @ prefix
	Text   string
	Week   int // ISO-ish week index, used by the volume analyses
}

// isHandleChar reports whether c may appear in a Twitter handle or hashtag.
func isHandleChar(c byte) bool {
	return c == '_' ||
		(c >= 'a' && c <= 'z') ||
		(c >= 'A' && c <= 'Z') ||
		(c >= '0' && c <= '9')
}

// extract scans text for tokens introduced by the marker byte ('@' or '#'),
// returning them lowercased without the marker. A marker must not be
// preceded by a handle character (user@example does not mention "example").
func extract(text string, marker byte) []string {
	var out []string
	for i := 0; i < len(text); i++ {
		if text[i] != marker {
			continue
		}
		if i > 0 && isHandleChar(text[i-1]) {
			continue
		}
		j := i + 1
		for j < len(text) && isHandleChar(text[j]) {
			j++
		}
		if j > i+1 {
			out = append(out, strings.ToLower(text[i+1:j]))
		}
		i = j - 1
	}
	return out
}

// Mentions returns the handles mentioned in the text (lowercased, in
// order, duplicates preserved).
func Mentions(text string) []string { return extract(text, '@') }

// Hashtags returns the hashtags in the text (lowercased, without '#').
func Hashtags(text string) []string { return extract(text, '#') }

// IsRetweet reports whether the text follows the classic retweet
// convention, "RT @user ...".
func IsRetweet(text string) bool {
	t := strings.TrimSpace(text)
	return len(t) >= 4 && (strings.HasPrefix(t, "RT @") || strings.HasPrefix(t, "rt @"))
}

// HasKeyword reports whether the text contains any of the keywords,
// case-insensitively. Keywords are matched as substrings, as a stream
// harvest would ("flu" matches "#swineflu").
func HasKeyword(text string, keywords []string) bool {
	lower := strings.ToLower(text)
	for _, k := range keywords {
		if k != "" && strings.Contains(lower, strings.ToLower(k)) {
			return true
		}
	}
	return false
}

// FilterKeyword returns the tweets whose text contains any keyword,
// modeling the paper's keyword harvests (flu, h1n1, #atlflood, ...).
func FilterKeyword(ts []Tweet, keywords []string) []Tweet {
	var out []Tweet
	for _, t := range ts {
		if HasKeyword(t.Text, keywords) {
			out = append(out, t)
		}
	}
	return out
}

// FilterWeek returns the tweets within the week range [lo, hi].
func FilterWeek(ts []Tweet, lo, hi int) []Tweet {
	var out []Tweet
	for _, t := range ts {
		if t.Week >= lo && t.Week <= hi {
			out = append(out, t)
		}
	}
	return out
}
