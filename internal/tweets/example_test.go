package tweets_test

import (
	"fmt"

	"graphct/internal/tweets"
)

func ExampleMentions() {
	fmt.Println(tweets.Mentions("RT @CDCFlu wash your hands! cc @EdMorrissey"))
	fmt.Println(tweets.Hashtags("roads flooded downtown #atlflood #ATL"))
	fmt.Println(tweets.IsRetweet("RT @ajc river cresting tonight"))
	// Output:
	// [cdcflu edmorrissey]
	// [atlflood atl]
	// true
}

func ExampleBuild() {
	ug := tweets.Build([]Tweet{
		{ID: 1, Author: "jaketapper", Text: "@dancharles they are more vulnerable to H1N1"},
		{ID: 2, Author: "dancharles", Text: "RT @jaketapper glad I listened to those tips"},
		{ID: 3, Author: "lurker", Text: "just reading the news today"},
	})
	fmt.Println("users:", ug.Stats.Users)
	fmt.Println("unique interactions:", ug.Stats.UniqueInteractions)
	core := ug.Graph.ReciprocalCore()
	fmt.Println("conversation pairs:", core.NumEdges())
	// Output:
	// users: 3
	// unique interactions: 2
	// conversation pairs: 1
}

// Tweet aliases the package type so the example reads naturally.
type Tweet = tweets.Tweet
