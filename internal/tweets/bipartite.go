package tweets

import (
	"strings"

	"graphct/internal/graph"
)

// Bipartite is the paper's alternative representation: "a bipartite graph
// considering both actors and interactions as vertices and connecting
// actors with interactions". Actor vertices occupy ids [0, NumActors);
// interaction vertices (one per tweet that mentions at least one user)
// follow. Each interaction connects its author and every mentioned user.
type Bipartite struct {
	Graph     *graph.Graph // undirected actor-interaction graph
	Names     []string     // actor id -> handle
	IDs       map[string]int32
	TweetIDs  []int64 // interaction vertex offset -> tweet id
	NumActors int
}

// BuildBipartite constructs the bipartite actor-interaction graph of a
// tweet stream. Tweets without mentions produce no interaction vertex
// (they connect nothing); self mentions connect the author to the
// interaction once.
func BuildBipartite(ts []Tweet) *Bipartite {
	ids := make(map[string]int32)
	var names []string
	intern := func(handle string) int32 {
		h := strings.ToLower(handle)
		if id, ok := ids[h]; ok {
			return id
		}
		id := int32(len(names))
		ids[h] = id
		names = append(names, h)
		return id
	}
	// First pass interns every actor so actor ids precede interactions.
	type row struct {
		author  int32
		targets []int32
		tweetID int64
	}
	var rows []row
	for _, t := range ts {
		author := intern(t.Author)
		mentions := Mentions(t.Text)
		if len(mentions) == 0 {
			continue
		}
		seen := map[int32]bool{author: true}
		targets := []int32{}
		for _, m := range mentions {
			id := intern(m)
			if !seen[id] {
				seen[id] = true
				targets = append(targets, id)
			}
		}
		rows = append(rows, row{author: author, targets: targets, tweetID: t.ID})
	}
	numActors := len(names)
	var edges []graph.Edge
	tweetIDs := make([]int64, len(rows))
	for i, r := range rows {
		iv := int32(numActors + i)
		tweetIDs[i] = r.tweetID
		edges = append(edges, graph.Edge{U: r.author, V: iv})
		for _, tg := range r.targets {
			edges = append(edges, graph.Edge{U: tg, V: iv})
		}
	}
	g, err := graph.FromEdges(numActors+len(rows), edges, graph.Options{})
	if err != nil {
		panic("tweets: bipartite ids out of range: " + err.Error())
	}
	return &Bipartite{Graph: g, Names: names, IDs: ids, TweetIDs: tweetIDs, NumActors: numActors}
}

// IsActor reports whether vertex v is an actor (vs an interaction).
func (b *Bipartite) IsActor(v int32) bool { return int(v) < b.NumActors }

// NumInteractions returns the interaction vertex count.
func (b *Bipartite) NumInteractions() int { return b.Graph.NumVertices() - b.NumActors }

// ProjectActors collapses the bipartite graph onto actors: two actors are
// connected when they share an interaction (author-mention or
// co-mention). The result is the undirected actor-actor graph the
// one-mode representation induces, over the same actor ids.
func (b *Bipartite) ProjectActors() *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < b.NumInteractions(); i++ {
		iv := int32(b.NumActors + i)
		members := b.Graph.Neighbors(iv)
		for x := 0; x < len(members); x++ {
			for y := x + 1; y < len(members); y++ {
				edges = append(edges, graph.Edge{U: members[x], V: members[y]})
			}
		}
	}
	g, err := graph.FromEdges(b.NumActors, edges, graph.Options{})
	if err != nil {
		panic("tweets: projection out of range: " + err.Error())
	}
	return g
}

// InteractionDegree returns, per interaction vertex, how many actors it
// touches (author plus distinct mentioned users).
func (b *Bipartite) InteractionDegree() []int {
	out := make([]int, b.NumInteractions())
	for i := range out {
		out[i] = b.Graph.Degree(int32(b.NumActors + i))
	}
	return out
}
