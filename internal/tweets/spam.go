package tweets

import "strings"

// The paper's harvests are explicitly "English, non-spam" streams. The
// synthetic corpus injects bait spam riding the trending hashtag; this
// filter removes it so the analysis pipelines consume the same clean
// stream the paper's did. Two signals are combined: bait phrasing with a
// link, and template reuse (near-identical texts posted many times).

// spamBait are phrases whose co-occurrence with a link marks bait spam.
var spamBait = []string{"free followers", "click http", "win a free", "work from home"}

// IsLikelySpam flags a single tweet by content: a link plus bait phrasing.
func IsLikelySpam(text string) bool {
	lower := strings.ToLower(text)
	if !strings.Contains(lower, "http://") && !strings.Contains(lower, "https://") {
		return false
	}
	for _, bait := range spamBait {
		if strings.Contains(lower, bait) {
			return true
		}
	}
	return false
}

// FilterSpam removes likely spam from a stream: content-flagged tweets
// and linked tweets whose normalized template recurs at least dupThreshold
// times (template spam evades phrase lists but not repetition).
// dupThreshold <= 0 uses 5.
func FilterSpam(ts []Tweet, dupThreshold int) []Tweet {
	if dupThreshold <= 0 {
		dupThreshold = 5
	}
	counts := make(map[string]int)
	for _, t := range ts {
		if hasLink(t.Text) {
			counts[normalizeTemplate(t.Text)]++
		}
	}
	out := make([]Tweet, 0, len(ts))
	for _, t := range ts {
		if IsLikelySpam(t.Text) {
			continue
		}
		if hasLink(t.Text) && counts[normalizeTemplate(t.Text)] >= dupThreshold {
			continue
		}
		out = append(out, t)
	}
	return out
}

func hasLink(text string) bool {
	lower := strings.ToLower(text)
	return strings.Contains(lower, "http://") || strings.Contains(lower, "https://")
}

// normalizeTemplate collapses the variable parts of templated spam:
// mentions, links and digits are replaced by placeholders so repeated
// templates hash identically.
func normalizeTemplate(text string) string {
	var b strings.Builder
	b.Grow(len(text))
	i := 0
	for i < len(text) {
		switch {
		case text[i] == '@':
			b.WriteByte('@')
			i++
			for i < len(text) && isHandleChar(text[i]) {
				i++
			}
		case hasPrefixAt(text, i, "http://"), hasPrefixAt(text, i, "https://"):
			b.WriteString("URL")
			for i < len(text) && text[i] != ' ' {
				i++
			}
		case text[i] >= '0' && text[i] <= '9':
			b.WriteByte('#')
			for i < len(text) && text[i] >= '0' && text[i] <= '9' {
				i++
			}
		default:
			b.WriteByte(lowerByte(text[i]))
			i++
		}
	}
	return b.String()
}

func hasPrefixAt(s string, i int, prefix string) bool {
	return len(s)-i >= len(prefix) && strings.EqualFold(s[i:i+len(prefix)], prefix)
}

func lowerByte(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c + 'a' - 'A'
	}
	return c
}
