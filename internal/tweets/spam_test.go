package tweets

import (
	"strings"
	"testing"
)

func TestIsLikelySpam(t *testing.T) {
	cases := []struct {
		text string
		want bool
	}{
		{"get free followers now click http://sp.am/1 #h1n1", true},
		{"WIN A FREE phone!! https://bait.example", true},
		{"free followers mentioned but no link", false},
		{"legit link http://news.example/story about h1n1", false},
		{"@friend let's chat about the flood", false},
	}
	for _, tc := range cases {
		if got := IsLikelySpam(tc.text); got != tc.want {
			t.Errorf("IsLikelySpam(%q) = %v, want %v", tc.text, got, tc.want)
		}
	}
}

func TestFilterSpamByContent(t *testing.T) {
	ts := []Tweet{
		{ID: 1, Author: "a", Text: "@b about the flood #atlflood"},
		{ID: 2, Author: "promo1", Text: "@c get free followers now click http://sp.am/7 #atlflood"},
		{ID: 3, Author: "d", Text: "reading updates"},
	}
	got := FilterSpam(ts, 0)
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 3 {
		t.Fatalf("FilterSpam = %v", got)
	}
}

func TestFilterSpamByTemplateRepetition(t *testing.T) {
	// A templated lure that evades the bait list: same text modulo
	// victim handle, link suffix and digits.
	var ts []Tweet
	for i := 0; i < 6; i++ {
		ts = append(ts, Tweet{
			ID:     int64(i),
			Author: "bot",
			Text:   "hey @victim" + string(rune('a'+i)) + " amazing deal 4" + string(rune('0'+i)) + " at http://x.yz/" + string(rune('a'+i)),
		})
	}
	// A legit linked article shared twice stays.
	ts = append(ts,
		Tweet{ID: 100, Author: "x", Text: "our flood liveblog http://news.example/flood"},
		Tweet{ID: 101, Author: "y", Text: "our flood liveblog http://news.example/flood"},
	)
	got := FilterSpam(ts, 5)
	if len(got) != 2 || got[0].ID != 100 {
		t.Fatalf("template filter kept %v", got)
	}
}

func TestFilterSpamOnGeneratedCorpus(t *testing.T) {
	opt := H1N1Corpus(0.05, 9)
	raw := Generate(opt)
	clean := FilterSpam(raw, 5)
	removed := len(raw) - len(clean)
	if removed == 0 {
		t.Fatal("no spam removed from corpus with SpamFrac > 0")
	}
	// Removal should be in the rough vicinity of SpamFrac.
	frac := float64(removed) / float64(len(raw))
	if frac < 0.5*opt.SpamFrac || frac > 2*opt.SpamFrac {
		t.Fatalf("removed %.3f of stream, SpamFrac %.3f", frac, opt.SpamFrac)
	}
	for _, tw := range clean {
		if IsLikelySpam(tw.Text) {
			t.Fatalf("spam survived: %q", tw.Text)
		}
	}
	// Spam authors must vanish from the mention graph.
	ug := Build(clean)
	for handle := range ug.IDs {
		if strings.HasPrefix(handle, "promo") {
			t.Fatalf("spam account %q in clean graph", handle)
		}
	}
}

func TestNormalizeTemplate(t *testing.T) {
	a := normalizeTemplate("hey @alice deal 42 at http://x.yz/abc now")
	b := normalizeTemplate("HEY @bob deal 7 at http://q.rs/zzz now")
	if a != b {
		t.Fatalf("templates differ:\n%q\n%q", a, b)
	}
	if normalizeTemplate("plain text") != "plain text" {
		t.Fatal("plain text should be unchanged")
	}
}

func TestFilterSpamDefaultThreshold(t *testing.T) {
	ts := []Tweet{{ID: 1, Author: "a", Text: "hello"}}
	if got := FilterSpam(ts, -3); len(got) != 1 {
		t.Fatal("default threshold broke passthrough")
	}
}
