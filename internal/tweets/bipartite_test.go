package tweets

import (
	"testing"
	"testing/quick"
)

func TestBipartiteBasics(t *testing.T) {
	ts := []Tweet{
		{ID: 10, Author: "a", Text: "hello @b and @c"},
		{ID: 11, Author: "b", Text: "@a right back"},
		{ID: 12, Author: "c", Text: "no mention here"},
		{ID: 13, Author: "d", Text: "@d self only"},
	}
	b := BuildBipartite(ts)
	// Actors: a, b, c, d. Interactions: tweets 10, 11, 13 (12 has none).
	if b.NumActors != 4 {
		t.Fatalf("actors = %d", b.NumActors)
	}
	if b.NumInteractions() != 3 {
		t.Fatalf("interactions = %d", b.NumInteractions())
	}
	if b.TweetIDs[0] != 10 || b.TweetIDs[2] != 13 {
		t.Fatalf("tweet ids = %v", b.TweetIDs)
	}
	// Tweet 10 connects a, b, c.
	iv := int32(b.NumActors)
	if b.Graph.Degree(iv) != 3 {
		t.Fatalf("interaction degree = %d, want 3", b.Graph.Degree(iv))
	}
	// Self-only tweet connects just its author.
	if b.Graph.Degree(int32(b.NumActors+2)) != 1 {
		t.Fatalf("self interaction degree = %d, want 1", b.Graph.Degree(int32(b.NumActors+2)))
	}
	if !b.IsActor(0) || b.IsActor(iv) {
		t.Fatal("IsActor misclassifies")
	}
	if err := b.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBipartiteIsBipartite(t *testing.T) {
	b := BuildBipartite(Generate(AtlFloodCorpus(0.2, 3)))
	// No actor-actor or interaction-interaction edges.
	for v := 0; v < b.Graph.NumVertices(); v++ {
		va := b.IsActor(int32(v))
		for _, w := range b.Graph.Neighbors(int32(v)) {
			if b.IsActor(w) == va {
				t.Fatalf("same-side edge %d-%d", v, w)
			}
		}
	}
}

func TestProjectActorsCoversMentions(t *testing.T) {
	ts := []Tweet{
		{ID: 1, Author: "a", Text: "@b @c together"},
	}
	b := BuildBipartite(ts)
	p := b.ProjectActors()
	// Projection connects a-b, a-c (mentions) and b-c (co-mention).
	ga, _ := b.IDs["a"]
	gb, _ := b.IDs["b"]
	gc, _ := b.IDs["c"]
	if !p.HasEdge(ga, gb) || !p.HasEdge(ga, gc) || !p.HasEdge(gb, gc) {
		t.Fatal("projection missing edges")
	}
	if p.NumEdges() != 3 {
		t.Fatalf("projection edges = %d", p.NumEdges())
	}
}

// Property: the actor projection contains every undirected mention edge
// the one-mode builder produces.
func TestPropertyProjectionSupersetOfMentions(t *testing.T) {
	f := func(seed int64) bool {
		ts := Generate(AtlFloodCorpus(0.1, seed))
		ug := Build(ts)
		bp := BuildBipartite(ts)
		proj := bp.ProjectActors()
		und := ug.Graph.Undirected()
		for v := 0; v < und.NumVertices(); v++ {
			handle := ug.Names[v]
			pv, ok := bp.IDs[handle]
			if !ok {
				// Users appearing only via mention-less tweets have no
				// bipartite vertex; they also have no mention edges.
				if und.Degree(int32(v)) != 0 {
					return false
				}
				continue
			}
			for _, w := range und.Neighbors(int32(v)) {
				pw, ok := bp.IDs[ug.Names[w]]
				if !ok || !proj.HasEdge(pv, pw) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestInteractionDegree(t *testing.T) {
	b := BuildBipartite([]Tweet{
		{ID: 1, Author: "a", Text: "@b"},
		{ID: 2, Author: "a", Text: "@b @c @d"},
	})
	deg := b.InteractionDegree()
	if len(deg) != 2 || deg[0] != 2 || deg[1] != 4 {
		t.Fatalf("interaction degrees = %v", deg)
	}
}

func TestBipartiteEmpty(t *testing.T) {
	b := BuildBipartite(nil)
	if b.NumActors != 0 || b.NumInteractions() != 0 {
		t.Fatal("empty bipartite wrong")
	}
	if p := b.ProjectActors(); p.NumVertices() != 0 {
		t.Fatal("empty projection wrong")
	}
}
