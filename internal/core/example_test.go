package core_test

import (
	"fmt"

	"graphct/internal/core"
	"graphct/internal/gen"
)

// ExampleToolkit walks the canonical GraphCT sequence: load, characterize,
// extract the largest component, rank, restore.
func ExampleToolkit() {
	g := gen.Disjoint(gen.Star(8), gen.Ring(4)) // a hub cluster and a cycle
	tk := core.New(g, core.WithSeed(1))

	fmt.Println("components:", len(tk.ComponentCensus()))
	tk.Save()
	tk.ExtractComponent(1)
	fmt.Println("largest:", tk.Graph().NumVertices(), "vertices")

	res := tk.BetweennessExact()
	top := res.TopK(1)
	fmt.Println("most central vertex (original id):", tk.OrigID(top[0]))

	tk.Restore()
	fmt.Println("restored:", tk.Graph().NumVertices(), "vertices")
	// Output:
	// components: 2
	// largest: 8 vertices
	// most central vertex (original id): 0
	// restored: 12 vertices
}
