// Package core assembles GraphCT's kernels behind one facade, the Toolkit:
// a current in-memory CSR graph, a load-time diameter estimate, a stack of
// saved graphs (the scripting interface's calculator-style memory), and
// one method per analysis kernel. Running many kernels against a single
// loaded graph — components, then extraction, then centrality — is the
// paper's core usage pattern, and the Toolkit keeps results composable by
// always operating on the current graph.
package core

import (
	"context"
	"fmt"

	"graphct/internal/bc"
	"graphct/internal/bfs"
	"graphct/internal/cc"
	"graphct/internal/cluster"
	"graphct/internal/dimacs"
	"graphct/internal/graph"
	"graphct/internal/kcore"
	"graphct/internal/sssp"
	"graphct/internal/stats"
)

// Toolkit holds the current graph and the saved-graph stack.
type Toolkit struct {
	g        *graph.Graph
	origIDs  []int32 // current graph's vertex ids in the loaded graph; nil = identity
	diam     stats.DiameterEstimate
	diamSet  bool
	stack    []frame
	seed     int64
	comps    *cc.Result // memoized components of the current graph
	diamSrc  int        // diameter sampling sources (paper default 256)
	diamMult int        // diameter multiplier (paper default 4)
}

type frame struct {
	g       *graph.Graph
	origIDs []int32
	diam    stats.DiameterEstimate
	diamSet bool
	comps   *cc.Result
}

// Option customizes a Toolkit.
type Option func(*Toolkit)

// WithSeed fixes the random seed used by sampling kernels.
func WithSeed(seed int64) Option { return func(t *Toolkit) { t.seed = seed } }

// WithDiameterSampling overrides the diameter estimator's source count and
// multiplier ("users ... may specify an alternate multiplier or number of
// samples").
func WithDiameterSampling(sources, multiplier int) Option {
	return func(t *Toolkit) {
		t.diamSrc = sources
		t.diamMult = multiplier
	}
}

// New wraps a graph in a Toolkit.
func New(g *graph.Graph, opts ...Option) *Toolkit {
	t := &Toolkit{g: g, seed: 1, diamSrc: 256, diamMult: 4}
	for _, o := range opts {
		o(t)
	}
	return t
}

// LoadDIMACS reads a DIMACS file into a new Toolkit. Edge weights are
// kept; path-counting kernels ignore them, the SSSP kernel uses them, and
// graphs derived by extraction or projection drop them.
func LoadDIMACS(path string, directed bool, opts ...Option) (*Toolkit, error) {
	g, err := dimacs.ParseFile(path, dimacs.ParseOptions{Directed: directed, KeepWeights: true})
	if err != nil {
		return nil, err
	}
	return New(g, opts...), nil
}

// LoadEdgeList reads a SNAP-style edge-list file into a new Toolkit.
func LoadEdgeList(path string, directed bool, opts ...Option) (*Toolkit, error) {
	g, err := dimacs.ParseEdgeListFile(path, dimacs.EdgeListOptions{Directed: directed})
	if err != nil {
		return nil, err
	}
	return New(g, opts...), nil
}

// LoadBinary reads a binary CSR file into a new Toolkit.
func LoadBinary(path string, opts ...Option) (*Toolkit, error) {
	g, err := dimacs.LoadBinary(path)
	if err != nil {
		return nil, err
	}
	return New(g, opts...), nil
}

// Graph returns the current graph.
func (t *Toolkit) Graph() *graph.Graph { return t.g }

// OrigIDs maps current vertex ids back to the graph the Toolkit was
// created with; nil means the identity mapping.
func (t *Toolkit) OrigIDs() []int32 { return t.origIDs }

// OrigID resolves one current vertex id to the originally loaded graph.
func (t *Toolkit) OrigID(v int32) int32 {
	if t.origIDs == nil {
		return v
	}
	return t.origIDs[v]
}

// setGraph installs a derived graph, composing orig-id mappings and
// invalidating memoized results.
func (t *Toolkit) setGraph(g *graph.Graph, orig []int32) {
	if t.origIDs != nil && orig != nil {
		composed := make([]int32, len(orig))
		for i, v := range orig {
			composed[i] = t.origIDs[v]
		}
		orig = composed
	} else if orig == nil {
		orig = t.origIDs
	}
	t.g = g
	t.origIDs = orig
	t.diamSet = false
	t.comps = nil
}

// Reorder relabels the current graph's vertices for cache locality
// (graph.DegreePerm or graph.BFSPerm per kind; ReorderNone is a no-op).
// The inverse permutation becomes the orig-id composition, so per-vertex
// output (kcentrality rankings, extractions) keeps reporting ids of the
// originally loaded graph — the relabeling is invisible outside kernel
// memory behavior.
func (t *Toolkit) Reorder(kind graph.ReorderKind) error {
	if kind == graph.ReorderNone {
		return nil
	}
	rg, inv, err := graph.Layout{Reorder: kind, Compact: graph.CompactOff}.Apply(t.g)
	if err != nil {
		return err
	}
	t.setGraph(rg, inv)
	return nil
}

// Diameter returns the sampled diameter estimate, computing and caching it
// on first use — GraphCT estimates it after loading and stores it globally
// for queue sizing.
func (t *Toolkit) Diameter() stats.DiameterEstimate {
	if !t.diamSet {
		t.diam = stats.EstimateDiameter(t.g, t.diamSrc, t.diamMult, t.seed)
		t.diamSet = true
	}
	return t.diam
}

// DiameterCtx is Diameter with cooperative cancellation for long-running
// service requests; the estimate is cached only on success.
func (t *Toolkit) DiameterCtx(ctx context.Context) (stats.DiameterEstimate, error) {
	if t.diamSet {
		return t.diam, nil
	}
	d, err := stats.EstimateDiameterCtx(ctx, t.g, t.diamSrc, t.diamMult, t.seed)
	if err != nil {
		return stats.DiameterEstimate{}, err
	}
	t.diam = d
	t.diamSet = true
	return d, nil
}

// Save pushes the current graph onto the stack.
func (t *Toolkit) Save() {
	t.stack = append(t.stack, frame{g: t.g, origIDs: t.origIDs, diam: t.diam, diamSet: t.diamSet, comps: t.comps})
}

// Restore pops the most recently saved graph, making it current.
func (t *Toolkit) Restore() error {
	if len(t.stack) == 0 {
		return fmt.Errorf("core: restore with empty graph stack")
	}
	fr := t.stack[len(t.stack)-1]
	t.stack = t.stack[:len(t.stack)-1]
	t.g, t.origIDs, t.diam, t.diamSet, t.comps = fr.g, fr.origIDs, fr.diam, fr.diamSet, fr.comps
	return nil
}

// StackDepth returns the number of saved graphs.
func (t *Toolkit) StackDepth() int { return len(t.stack) }

// DegreeStats summarizes the degree distribution.
func (t *Toolkit) DegreeStats() stats.DegreeStats { return stats.Degrees(t.g) }

// DegreeHistogram returns the exact degree histogram.
func (t *Toolkit) DegreeHistogram() []stats.HistogramBin { return stats.DegreeHistogram(t.g) }

// Components labels connected components, memoizing per current graph.
func (t *Toolkit) Components() *cc.Result {
	if t.comps == nil {
		t.comps = cc.Components(t.g)
	}
	return t.comps
}

// ComponentCensus returns components by decreasing size.
func (t *Toolkit) ComponentCensus() []cc.Component { return t.Components().Census() }

// ExtractComponent replaces the current graph with its rank-th largest
// component (rank 1 = largest), the scripting interface's
// "extract component N".
func (t *Toolkit) ExtractComponent(rank int) error {
	census := t.ComponentCensus()
	if rank < 1 || rank > len(census) {
		return fmt.Errorf("core: component rank %d of %d", rank, len(census))
	}
	sub, orig := cc.Extract(t.g, t.Components(), rank)
	t.setGraph(sub, orig)
	return nil
}

// ReciprocalCore replaces the current graph with the undirected graph of
// mutual mention pairs — the paper's conversation filter.
func (t *Toolkit) ReciprocalCore() {
	t.setGraph(t.g.ReciprocalCore(), nil)
}

// ToUndirected replaces the current graph with its undirected projection.
func (t *Toolkit) ToUndirected() {
	t.setGraph(t.g.Undirected(), nil)
}

// DropIsolated removes zero-degree vertices from the current graph.
func (t *Toolkit) DropIsolated() {
	sub, orig := t.g.DropIsolated()
	t.setGraph(sub, orig)
}

// KCentrality estimates k-betweenness centrality with the given number of
// sampled sources (<= 0 for exact), the scripting interface's
// "kcentrality K SAMPLES".
func (t *Toolkit) KCentrality(k, samples int) *bc.Result {
	return bc.Centrality(t.g, bc.Options{K: k, Samples: samples, Seed: t.seed})
}

// KCentralityCtx is KCentrality with cooperative cancellation, checked
// between per-source computations.
func (t *Toolkit) KCentralityCtx(ctx context.Context, k, samples int) (*bc.Result, error) {
	return bc.CentralityCtx(ctx, t.g, bc.Options{K: k, Samples: samples, Seed: t.seed})
}

// ApproxCentrality computes adaptive approximate betweenness centrality
// with an (ε,δ) absolute-error guarantee, the scripting interface's
// "kcentrality 0 0 eps=E delta=D". topK > 0 relaxes the stopping rule to
// certify the top-k ranking only.
func (t *Toolkit) ApproxCentrality(eps, delta float64, topK int) *bc.ApproxResult {
	return bc.ApproxCentrality(t.g, bc.Options{
		Adaptive: true, Epsilon: eps, Delta: delta, AdaptiveTopK: topK, Seed: t.seed,
	})
}

// ApproxCentralityCtx is ApproxCentrality with cooperative cancellation,
// checked between samples.
func (t *Toolkit) ApproxCentralityCtx(ctx context.Context, eps, delta float64, topK int) (*bc.ApproxResult, error) {
	return bc.ApproxCentralityCtx(ctx, t.g, bc.Options{
		Adaptive: true, Epsilon: eps, Delta: delta, AdaptiveTopK: topK, Seed: t.seed,
	})
}

// BetweennessExact computes exact betweenness centrality.
func (t *Toolkit) BetweennessExact() *bc.Result { return bc.Exact(t.g) }

// BetweennessApprox computes sampled approximate betweenness centrality.
func (t *Toolkit) BetweennessApprox(samples int) *bc.Result {
	return bc.Approx(t.g, samples, t.seed)
}

// KCores replaces the current graph with its k-core.
func (t *Toolkit) KCores(k int32) {
	sub, orig := kcore.Extract(t.g, k)
	t.setGraph(sub, orig)
}

// CoreNumbers returns every vertex's core number.
func (t *Toolkit) CoreNumbers() []int32 { return kcore.Decompose(t.g) }

// ClusteringCoefficients returns per-vertex clustering coefficients.
func (t *Toolkit) ClusteringCoefficients() []float64 { return cluster.Coefficients(t.g) }

// GlobalClustering returns the graph transitivity.
func (t *Toolkit) GlobalClustering() float64 { return cluster.Global(t.g) }

// BFS marks a breadth-first search of bounded depth from a vertex
// (depth < 0 for unbounded).
func (t *Toolkit) BFS(src int32, depth int) *bfs.Result {
	return bfs.SearchBounded(t.g, src, depth)
}

// SSSP computes weighted single-source shortest paths from src via
// parallel delta-stepping (heuristic bucket width). Unweighted graphs get
// unit weights.
func (t *Toolkit) SSSP(src int32) (*sssp.Result, error) {
	return sssp.DeltaStepping(t.g, src, 0)
}

// SSSPCtx is SSSP with cooperative cancellation, checked between
// relaxation rounds.
func (t *Toolkit) SSSPCtx(ctx context.Context, src int32) (*sssp.Result, error) {
	return sssp.DeltaSteppingCtx(ctx, t.g, src, 0)
}

// SaveBinary writes the current graph to a binary CSR file.
func (t *Toolkit) SaveBinary(path string) error { return dimacs.SaveBinary(path, t.g) }
