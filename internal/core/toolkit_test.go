package core

import (
	"os"
	"path/filepath"
	"testing"

	"graphct/internal/gen"
	"graphct/internal/graph"
)

func TestDiameterCachedAndConfigurable(t *testing.T) {
	tk := New(gen.Path(50), WithSeed(3), WithDiameterSampling(50, 1))
	d := tk.Diameter()
	if d.LongestPath != 49 || d.Estimate != 49 {
		t.Fatalf("diameter = %+v", d)
	}
	if tk.Diameter() != d {
		t.Fatal("diameter not cached")
	}
}

func TestComponentsMemoizedAndInvalidated(t *testing.T) {
	tk := New(gen.Disjoint(gen.Ring(6), gen.Path(3)))
	c1 := tk.Components()
	if c1.Count != 2 {
		t.Fatalf("components = %d", c1.Count)
	}
	if tk.Components() != c1 {
		t.Fatal("components not memoized")
	}
	if err := tk.ExtractComponent(1); err != nil {
		t.Fatal(err)
	}
	if tk.Components() == c1 {
		t.Fatal("memoized components not invalidated by extraction")
	}
	if tk.Graph().NumVertices() != 6 {
		t.Fatalf("largest component = %v", tk.Graph())
	}
}

func TestExtractComponentErrors(t *testing.T) {
	tk := New(gen.Ring(4))
	if err := tk.ExtractComponent(2); err == nil {
		t.Fatal("rank beyond census accepted")
	}
	if err := tk.ExtractComponent(0); err == nil {
		t.Fatal("rank 0 accepted")
	}
}

func TestSaveRestore(t *testing.T) {
	tk := New(gen.Disjoint(gen.Ring(6), gen.Path(3)))
	tk.Save()
	if err := tk.ExtractComponent(2); err != nil {
		t.Fatal(err)
	}
	if tk.Graph().NumVertices() != 3 {
		t.Fatalf("second component = %v", tk.Graph())
	}
	if tk.StackDepth() != 1 {
		t.Fatalf("stack depth = %d", tk.StackDepth())
	}
	if err := tk.Restore(); err != nil {
		t.Fatal(err)
	}
	if tk.Graph().NumVertices() != 9 {
		t.Fatal("restore did not bring back full graph")
	}
	if err := tk.Restore(); err == nil {
		t.Fatal("restore on empty stack should error")
	}
}

func TestOrigIDComposition(t *testing.T) {
	// Disjoint(Path(3), Ring(6)): ring occupies ids 3..8.
	tk := New(gen.Disjoint(gen.Path(3), gen.Ring(6)))
	if err := tk.ExtractComponent(1); err != nil { // ring
		t.Fatal(err)
	}
	if tk.OrigID(0) != 3 {
		t.Fatalf("first-level orig = %d, want 3", tk.OrigID(0))
	}
	tk.KCores(2) // whole ring survives; ids compose through identity
	if tk.OrigID(0) != 3 {
		t.Fatalf("composed orig = %d, want 3", tk.OrigID(0))
	}
	// Second extraction must compose: extract component of the ring
	// (itself), ids still map to 3..8.
	if err := tk.ExtractComponent(1); err != nil {
		t.Fatal(err)
	}
	if tk.OrigID(5) != 8 {
		t.Fatalf("orig(5) = %d, want 8", tk.OrigID(5))
	}
}

func TestKCentralityAndApprox(t *testing.T) {
	tk := New(gen.Star(20), WithSeed(5))
	exact := tk.BetweennessExact()
	if exact.Scores[0] != 19*18 {
		t.Fatalf("hub BC = %v", exact.Scores[0])
	}
	k1 := tk.KCentrality(1, 0)
	if k1.Scores[0] != exact.Scores[0] {
		t.Fatalf("k=1 star hub = %v, want %v", k1.Scores[0], exact.Scores[0])
	}
	appr := tk.BetweennessApprox(10)
	if len(appr.Sources) != 10 {
		t.Fatalf("approx sources = %d", len(appr.Sources))
	}
}

func TestApproxCentralityGuaranteed(t *testing.T) {
	tk := New(gen.Star(40), WithSeed(5))
	res := tk.ApproxCentrality(0.05, 0.1, 0)
	if res.Guarantee.Epsilon != 0.05 || res.Guarantee.Delta != 0.1 {
		t.Fatalf("guarantee = %+v", res.Guarantee)
	}
	if res.Guarantee.SamplesUsed <= 0 {
		t.Fatalf("no samples used: %+v", res.Guarantee)
	}
	// The hub's normalized score is (n-2)/n ≈ 0.95; ε=0.05 forces it to
	// rank first.
	if top := res.TopK(1); top[0] != 0 {
		t.Fatalf("star top-1 = %v, want hub 0", top)
	}
	// Deterministic per toolkit seed.
	again := tk.ApproxCentrality(0.05, 0.1, 0)
	for v := range res.Scores {
		if res.Scores[v] != again.Scores[v] {
			t.Fatalf("re-run differs at vertex %d", v)
		}
	}
}

func TestKCoresAndClustering(t *testing.T) {
	tk := New(gen.Disjoint(gen.Complete(4), gen.Path(5)))
	cores := tk.CoreNumbers()
	if cores[0] != 3 {
		t.Fatalf("core numbers = %v", cores)
	}
	tk.KCores(2)
	if tk.Graph().NumVertices() != 4 {
		t.Fatalf("2-core = %v", tk.Graph())
	}
	coef := tk.ClusteringCoefficients()
	for _, c := range coef {
		if c != 1 {
			t.Fatalf("K4 coefficients = %v", coef)
		}
	}
	if tk.GlobalClustering() != 1 {
		t.Fatal("K4 transitivity != 1")
	}
}

func TestReciprocalCoreAndUndirected(t *testing.T) {
	d, _ := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 0}, {U: 2, V: 0}, {U: 2, V: 3}}, graph.Options{Directed: true})
	tk := New(d)
	tk.Save()
	tk.ReciprocalCore()
	if tk.Graph().NumEdges() != 1 || tk.Graph().Directed() {
		t.Fatalf("reciprocal core = %v", tk.Graph())
	}
	tk.Restore()
	tk.ToUndirected()
	if tk.Graph().Directed() || tk.Graph().NumEdges() != 3 {
		t.Fatalf("undirected = %v", tk.Graph())
	}
}

func TestDropIsolated(t *testing.T) {
	g, _ := graph.FromEdges(10, []graph.Edge{{U: 0, V: 9}}, graph.Options{})
	tk := New(g)
	tk.DropIsolated()
	if tk.Graph().NumVertices() != 2 {
		t.Fatalf("DropIsolated = %v", tk.Graph())
	}
	if tk.OrigID(1) != 9 {
		t.Fatalf("orig = %d", tk.OrigID(1))
	}
}

func TestBFSBounded(t *testing.T) {
	tk := New(gen.Path(10))
	r := tk.BFS(0, 4)
	if r.NumReached() != 5 {
		t.Fatalf("bounded BFS reached %d", r.NumReached())
	}
	full := tk.BFS(0, -1)
	if full.NumReached() != 10 {
		t.Fatal("unbounded BFS incomplete")
	}
}

func TestDegreeStatsAndHistogram(t *testing.T) {
	tk := New(gen.Star(5))
	st := tk.DegreeStats()
	if st.Max != 4 || st.N != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if bins := tk.DegreeHistogram(); len(bins) != 2 {
		t.Fatalf("histogram = %v", bins)
	}
}

func TestLoadDIMACSAndEdgeList(t *testing.T) {
	dir := t.TempDir()
	dimacsPath := filepath.Join(dir, "g.dimacs")
	if err := os.WriteFile(dimacsPath, []byte("p edge 3 2\ne 1 2 1\ne 2 3 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tk, err := LoadDIMACS(dimacsPath, false, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if tk.Graph().NumEdges() != 2 {
		t.Fatal("dimacs load wrong")
	}
	elPath := filepath.Join(dir, "g.el")
	if err := os.WriteFile(elPath, []byte("0 1\n1 2\n2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tk, err = LoadEdgeList(elPath, true)
	if err != nil {
		t.Fatal(err)
	}
	if !tk.Graph().Directed() || tk.Graph().NumArcs() != 3 {
		t.Fatal("edge list load wrong")
	}
	if _, err := LoadEdgeList(filepath.Join(dir, "missing"), false); err == nil {
		t.Fatal("missing edge list accepted")
	}
}

func TestOrigIDsAccessors(t *testing.T) {
	tk := New(gen.Disjoint(gen.Path(2), gen.Ring(3)))
	if tk.OrigIDs() != nil {
		t.Fatal("identity mapping should be nil")
	}
	if tk.OrigID(4) != 4 {
		t.Fatal("identity OrigID broken")
	}
	if err := tk.ExtractComponent(1); err != nil { // the ring, ids 2..4
		t.Fatal(err)
	}
	ids := tk.OrigIDs()
	if len(ids) != 3 || ids[0] != 2 {
		t.Fatalf("OrigIDs = %v", ids)
	}
}

func TestFileRoundTripThroughToolkit(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "g.bin")
	tk := New(gen.Ring(8))
	if err := tk.SaveBinary(bin); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBinary(bin)
	if err != nil {
		t.Fatal(err)
	}
	if back.Graph().NumEdges() != 8 {
		t.Fatal("binary round trip changed edges")
	}
	if _, err := LoadBinary(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing binary should error")
	}
	if _, err := LoadDIMACS(filepath.Join(dir, "missing"), false); err == nil {
		t.Fatal("missing dimacs should error")
	}
}
