// Package graphct_test benches every table and figure of the paper's
// evaluation plus the ablations DESIGN.md calls out. Each benchmark runs a
// reduced-size instance of the corresponding experiment so the whole suite
// finishes quickly; cmd/experiments runs the full-size reproductions.
package graphct_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"graphct/internal/bc"
	"graphct/internal/cc"
	"graphct/internal/experiments"
	"graphct/internal/gen"
	"graphct/internal/graph"
	"graphct/internal/rank"
	"graphct/internal/server"
	"graphct/internal/stats"
	"graphct/internal/stream"
	"graphct/internal/tweets"
)

func benchCfg() experiments.Config {
	return experiments.Config{
		Scale:        0.05,
		SeptScale:    0.003,
		Realizations: 1,
		Seed:         1,
		RMATScales:   []int{8},
	}
}

// BenchmarkTable2Volume regenerates Table II's weekly article counts.
func BenchmarkTable2Volume(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.Table2(cfg)
	}
}

// BenchmarkTable3Graphs builds the three tweet graphs and their LWCCs.
func BenchmarkTable3Graphs(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.Table3(cfg)
	}
}

// BenchmarkTable4Ranking ranks the top 15 actors by exact BC.
func BenchmarkTable4Ranking(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.Table4(cfg)
	}
}

// BenchmarkFig2Degree measures the degree-distribution analysis.
func BenchmarkFig2Degree(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.Fig2(cfg)
	}
}

// BenchmarkFig3Subcommunity measures the reciprocal-mention filter.
func BenchmarkFig3Subcommunity(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.Fig3(cfg)
	}
}

// BenchmarkFig4Sampling measures approximate BC at the paper's sampling
// levels on one tweet graph (the figure's x-axis).
func BenchmarkFig4Sampling(b *testing.B) {
	ug := tweets.Build(tweets.Generate(tweets.H1N1Corpus(0.1, 1)))
	g, _ := cc.Largest(ug.Graph)
	for _, pct := range []int{10, 25, 50, 100} {
		pct := pct
		b.Run(benchName("sample", pct), func(b *testing.B) {
			sources := g.NumVertices() * pct / 100
			if sources < 1 {
				sources = 1
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bc.Centrality(g, bc.Options{Samples: sources, Seed: int64(i)})
			}
		})
	}
}

// BenchmarkFig5Accuracy measures the exact-vs-approximate overlap
// computation.
func BenchmarkFig5Accuracy(b *testing.B) {
	ug := tweets.Build(tweets.Generate(tweets.AtlFloodCorpus(0.5, 1)))
	g, _ := cc.Largest(ug.Graph)
	exact := bc.Exact(g)
	approx := bc.Approx(g, g.NumVertices()/10+1, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tf := range experiments.TopFractions {
			rank.TopAccuracy(exact.Scores, approx.Scores, tf)
		}
	}
}

// BenchmarkFig6Scaling measures 256-source BC across R-MAT scales, the
// figure's time-vs-size series.
func BenchmarkFig6Scaling(b *testing.B) {
	for _, scale := range []int{10, 12, 14} {
		g := gen.RMAT(gen.PaperRMAT(scale, 1))
		b.Run(benchName("scale", scale), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bc.Centrality(g, bc.Options{Samples: 256, Seed: int64(i)})
			}
		})
	}
}

// BenchmarkCentrality is the kernel acceptance benchmark tracked in
// BENCH_PR2.json: sampled betweenness centrality on the paper's R-MAT
// generator at scale 16 (65k vertices, ~1M distinct edges) with a fixed
// seed. edges/s counts NumArcs() once per source per iteration — the
// traversal-throughput convention cmd/bench uses for the perf trajectory,
// so numbers here are comparable across PRs.
func BenchmarkCentrality(b *testing.B) {
	g := gen.RMAT(gen.PaperRMAT(16, 1))
	const samples = 32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bc.Centrality(g, bc.Options{Samples: samples, Seed: 1})
	}
	edges := float64(g.NumArcs()) * samples * float64(b.N)
	b.ReportMetric(edges/b.Elapsed().Seconds(), "edges/s")
}

// Ablation: coarse source-level parallelism vs added fine-grained
// within-source parallelism (DESIGN.md §5).
func BenchmarkAblationParallelismCoarse(b *testing.B) {
	g := gen.RMAT(gen.PaperRMAT(12, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bc.Centrality(g, bc.Options{Samples: 64, Seed: 1})
	}
}

func BenchmarkAblationParallelismFine(b *testing.B) {
	g := gen.RMAT(gen.PaperRMAT(12, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bc.Centrality(g, bc.Options{Samples: 64, Seed: 1, FineGrained: true})
	}
}

// Ablation: deduplicated adjacency (the paper discards duplicate
// interactions) vs raw multigraph traversal cost.
func BenchmarkAblationDedup(b *testing.B) {
	edges := gen.RMATEdges(gen.PaperRMAT(12, 1))
	n := 1 << 12
	for _, keep := range []bool{false, true} {
		name := "dedup"
		if keep {
			name = "multigraph"
		}
		b.Run(name, func(b *testing.B) {
			g, err := graph.FromEdges(n, append([]graph.Edge(nil), edges...),
				graph.Options{KeepDuplicates: keep})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cc.Components(g)
				stats.Degrees(g)
			}
		})
	}
}

// Ablation: k-betweenness cost growth in k.
func BenchmarkKBetweenness(b *testing.B) {
	g := gen.PreferentialAttachment(2000, 3, 1)
	for k := 0; k <= bc.MaxK; k++ {
		k := k
		b.Run(benchName("k", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bc.Centrality(g, bc.Options{K: k, Samples: 64, Seed: 1})
			}
		})
	}
}

// Ablation: source-sampling strategies at 10% sources on the full
// (disconnected) mention graph.
func BenchmarkAblationSampling(b *testing.B) {
	ug := tweets.Build(tweets.Generate(tweets.H1N1Corpus(0.1, 1)))
	g := ug.Graph.Undirected()
	samples := g.NumVertices() / 10
	for _, st := range []struct {
		name string
		s    bc.Sampling
	}{{"uniform", bc.SampleUniform}, {"stratified", bc.SampleStratified}, {"degree", bc.SampleDegreeBiased}} {
		st := st
		b.Run(st.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bc.Centrality(g, bc.Options{Samples: samples, Seed: int64(i), Strategy: st.s})
			}
		})
	}
}

// Ablation: hook-and-jump components vs the paper's literal multi-source
// BFS coloring.
func BenchmarkAblationComponents(b *testing.B) {
	g := gen.RMAT(gen.PaperRMAT(13, 1))
	b.Run("hook-jump", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cc.Components(g)
		}
	})
	b.Run("multi-bfs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cc.ComponentsBFS(g)
		}
	})
}

// Directed-flow betweenness on a follower network (paper future work).
func BenchmarkDirectedBCFollower(b *testing.B) {
	g := gen.Follower(gen.DefaultFollower(4000, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bc.DirectedCentrality(g, bc.DirectedOptions{Samples: 128, Seed: int64(i)})
	}
}

// Substrate micro-benches: ingest and traversal throughput.
func BenchmarkIngestRMAT14(b *testing.B) {
	edges := gen.RMATEdges(gen.PaperRMAT(14, 1))
	n := 1 << 14
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.FromEdges(n, append([]graph.Edge(nil), edges...), graph.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiameterEstimate(b *testing.B) {
	g := gen.RMAT(gen.PaperRMAT(13, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.EstimateDiameter(g, 256, 4, int64(i))
	}
}

// BenchmarkServerThroughput measures the graphctd serving path against
// an in-process HTTP server: "cold" requests vary their parameters so
// every one executes a kernel, "warm" requests repeat one key so all but
// the first are LRU cache hits. The gap is the serving-path baseline
// later PRs must beat.
func BenchmarkServerThroughput(b *testing.B) {
	g := gen.PreferentialAttachment(2000, 3, 1)
	n := g.NumVertices()
	reg := server.NewRegistry()
	reg.Add("g", g)
	ts := httptest.NewServer(server.New(reg, server.Config{MaxQueued: 1 << 16}))
	defer ts.Close()
	client := ts.Client()
	fetch := func(b *testing.B, url string) {
		resp, err := client.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d for %s", resp.StatusCode, url)
		}
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// src and depth combine into a never-repeating cache key.
			fetch(b, fmt.Sprintf("%s/graphs/g/bfs?src=%d&depth=%d", ts.URL, i%n, 2+i/n))
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	})
	b.Run("warm", func(b *testing.B) {
		url := ts.URL + "/graphs/g/components"
		fetch(b, url) // fill the cache outside the timed region
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fetch(b, url)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	})
}

// BenchmarkLiveIngest measures the live-update pipeline: "apply" is the
// raw sharded batch-apply rate with incremental triangle maintenance
// (edges/s = effective mutations per second), "snapshot" is the epoch
// materialization latency with the steady-state dirty fraction one batch
// leaves behind, and "http" is the end-to-end ingest endpoint including
// the binary decode, admission and epoch publishing.
func BenchmarkLiveIngest(b *testing.B) {
	const n = 1 << 14
	const batchSize = 1 << 10
	mkBatches := func(count int) [][]stream.Update {
		rng := rand.New(rand.NewSource(7))
		out := make([][]stream.Update, count)
		for i := range out {
			batch := make([]stream.Update, batchSize)
			for j := range batch {
				batch[j] = stream.Update{
					U:    int32(rng.Intn(n)),
					V:    int32(rng.Intn(n)),
					Time: int64(i*batchSize + j),
					Del:  rng.Intn(8) == 0,
				}
			}
			out[i] = batch
		}
		return out
	}

	b.Run("apply", func(b *testing.B) {
		batches := mkBatches(64)
		s := stream.New(n)
		var applied int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := s.ApplyBatch(batches[i%len(batches)])
			if err != nil {
				b.Fatal(err)
			}
			applied += int64(res.Inserted + res.Deleted)
		}
		b.ReportMetric(float64(applied)/b.Elapsed().Seconds(), "edges/s")
	})

	b.Run("snapshot", func(b *testing.B) {
		batches := mkBatches(64)
		s := stream.New(n)
		for _, batch := range batches {
			if _, err := s.ApplyBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
		s.Snapshot() // steady state: each iteration re-dirties one batch
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if _, err := s.ApplyBatch(batches[i%len(batches)]); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			s.Snapshot()
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/1e6, "ms/snapshot")
	})

	b.Run("http", func(b *testing.B) {
		batches := mkBatches(64)
		frames := make([][]byte, len(batches))
		for i, batch := range batches {
			var buf bytes.Buffer
			if err := stream.EncodeUpdates(&buf, batch); err != nil {
				b.Fatal(err)
			}
			frames[i] = buf.Bytes()
		}
		reg := server.NewRegistry()
		if _, err := reg.AddLive("live", n); err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(server.New(reg, server.Config{
			IngestQueued: 1 << 16, SnapshotEvery: 16 * batchSize,
		}))
		defer ts.Close()
		client := ts.Client()
		var applied int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := client.Post(ts.URL+"/graphs/live/ingest",
				stream.WireContentType, bytes.NewReader(frames[i%len(frames)]))
			if err != nil {
				b.Fatal(err)
			}
			var res struct{ Inserted, Deleted int }
			if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
			applied += int64(res.Inserted + res.Deleted)
		}
		b.ReportMetric(float64(applied)/b.Elapsed().Seconds(), "edges/s")
		b.ReportMetric(float64(b.N*batchSize)/b.Elapsed().Seconds(), "updates/s")
	})
}

func benchName(prefix string, v int) string {
	const digits = "0123456789"
	if v == 0 {
		return prefix + "-0"
	}
	var buf []byte
	for v > 0 {
		buf = append([]byte{digits[v%10]}, buf...)
		v /= 10
	}
	return prefix + "-" + string(buf)
}
