package graphct_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphct/internal/bc"
	"graphct/internal/cc"
	"graphct/internal/core"
	"graphct/internal/dimacs"
	"graphct/internal/rank"
	"graphct/internal/script"
	"graphct/internal/stats"
	"graphct/internal/tweets"
)

// TestEndToEndPipeline drives the entire paper workflow at miniature
// scale: harvest a synthetic crisis stream, clean it, build the mention
// graph, persist it through both file formats, analyze it through the
// toolkit, rank actors exactly and approximately, compare the rankings,
// and replay the same analysis through the scripting interface.
func TestEndToEndPipeline(t *testing.T) {
	dir := t.TempDir()

	// 1. Harvest: generate, keyword-filter, de-spam.
	raw := tweets.Generate(tweets.H1N1Corpus(0.05, 42))
	onTopic := tweets.FilterKeyword(raw, []string{"h1n1", "flu"})
	clean := tweets.FilterSpam(onTopic, 0)
	if len(clean) == 0 || len(clean) >= len(raw) {
		t.Fatalf("harvest sizes raw=%d clean=%d", len(raw), len(clean))
	}

	// 2. Mention graph with the paper's Table III characteristics.
	ug := tweets.Build(clean)
	if ug.Stats.Users == 0 || ug.Stats.UniqueInteractions == 0 {
		t.Fatalf("degenerate graph: %+v", ug.Stats)
	}

	// 3. Persist through DIMACS text and binary CSR; reload identically.
	und := ug.Graph.Undirected()
	dimacsPath := filepath.Join(dir, "mentions.dimacs")
	f, err := os.Create(dimacsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := dimacs.Write(f, und); err != nil {
		t.Fatal(err)
	}
	f.Close()
	binPath := filepath.Join(dir, "mentions.bin")
	if err := dimacs.SaveBinary(binPath, und); err != nil {
		t.Fatal(err)
	}
	fromText, err := dimacs.ParseFile(dimacsPath, dimacs.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := dimacs.LoadBinary(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if fromText.NumEdges() != und.NumEdges() || fromBin.NumEdges() != und.NumEdges() {
		t.Fatal("file round trips changed the edge set")
	}

	// 4. Toolkit analysis: diameter, components, LWCC extraction, k-core,
	// clustering — the kernels of Section IV over one loaded graph.
	tk := core.New(fromBin, core.WithSeed(7))
	if tk.Diameter().Estimate <= 0 {
		t.Fatal("no diameter estimate")
	}
	census := tk.ComponentCensus()
	if len(census) < 2 {
		t.Fatalf("expected a fragmented mention graph, got %d components", len(census))
	}
	tk.Save()
	if err := tk.ExtractComponent(1); err != nil {
		t.Fatal(err)
	}
	lwcc := tk.Graph()
	if int64(lwcc.NumVertices()) != census[0].Size {
		t.Fatal("LWCC extraction size mismatch")
	}

	// 5. Rankings: exact vs 25% sampling, overlap must be meaningful; the
	// most central actor must be a broadcast hub handle.
	exact := tk.BetweennessExact()
	approx := tk.BetweennessApprox(lwcc.NumVertices() / 4)
	overlap := rank.TopAccuracy(exact.Scores, approx.Scores, 0.05)
	if overlap < 0.5 {
		t.Fatalf("top-5%% overlap %v suspiciously low", overlap)
	}
	topOrig := tk.OrigID(exact.TopK(1)[0])
	// Map back through the builder's vertex numbering (identical for the
	// undirected projection) to a handle.
	topHandle := ug.Names[topOrig]
	if !strings.Contains(topHandle, "h1n1") {
		t.Fatalf("top actor %q is not a hub", topHandle)
	}
	if err := tk.Restore(); err != nil {
		t.Fatal(err)
	}

	// 6. Conversations: the reciprocal core is dramatically smaller and
	// splits into clusters.
	coreG := ug.Graph.ReciprocalCore()
	conv, _ := coreG.DropIsolated()
	active, _ := ug.Graph.DropIsolated()
	if conv.NumVertices() == 0 || conv.NumVertices()*3 > active.NumVertices() {
		t.Fatalf("reciprocal filter: %d of %d", conv.NumVertices(), active.NumVertices())
	}
	if cc.Components(conv).Count < 2 {
		t.Fatal("expected multiple conversation clusters")
	}

	// 7. Degree structure: heavy tail with hub concentration.
	if alpha, used := stats.PowerLawAlpha(und, 4); used > 0 && (alpha < 1.5 || alpha > 5) {
		t.Fatalf("alpha = %v", alpha)
	}
	if share := stats.TopShare(und, 0.2); share < 0.5 {
		t.Fatalf("top-20%% share = %v", share)
	}

	// 8. The scripting interface reproduces the same numbers.
	var out bytes.Buffer
	in := script.New(&out, dir)
	in.SetSeed(7)
	scriptSrc := `read binary mentions.bin
print components
extract component 1
kcentrality 0 0 => exact.txt
kcentrality 0 64 => approx.txt
compare exact.txt approx.txt 5
`
	if err := in.Run(strings.NewReader(scriptSrc)); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "top 5%: overlap") {
		t.Fatalf("script output missing comparison: %s", out.String())
	}
	scores, err := os.ReadFile(filepath.Join(dir, "exact.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(scores, []byte("\n")); lines != lwcc.NumVertices() {
		t.Fatalf("script exact scores: %d lines for %d vertices", lines, lwcc.NumVertices())
	}

	// 9. k-betweenness agrees with classic BC at k=0 through the toolkit.
	k0 := bc.Centrality(und, bc.Options{K: 0, Samples: 50, Seed: 3})
	k1 := bc.Centrality(und, bc.Options{K: 1, Samples: 50, Seed: 3})
	if len(k0.Scores) != len(k1.Scores) {
		t.Fatal("k-centrality shape mismatch")
	}
}
