module graphct

go 1.22
