#!/usr/bin/env sh
# CI load smoke (target: well under 60s): start the REAL graphctd binary
# with QoS lanes enabled, drive the mixed workload against it — cheap
# reads, k-betweenness-centrality, streaming ingest — and require every
# cheap class's p99 to stay under the SLO bound while centrality requests
# are in flight. This is the end-to-end proof that the priority lanes
# protect interactive reads on the shipped binary, not just in-process.
#
# The bound is deliberately loose for shared CI runners: with lanes on,
# cheap p99 measures tens to hundreds of ms; with lanes off, the same
# blend drives it past 1.8s and into 429s, so 1500ms separates the two
# regimes with margin on both sides.
set -eu
cd "$(dirname "$0")/.."

bin=$(mktemp -d)
trap 'kill "$pid" 2>/dev/null || true; wait "$pid" 2>/dev/null || true; rm -rf "$bin"' EXIT INT TERM

go build -o "$bin/graphctd" ./cmd/graphctd
go build -o "$bin/loadgen" ./cmd/loadgen

"$bin/graphctd" -addr 127.0.0.1:18423 \
	-max-concurrent 2 -max-queued 32 -cheap-reserved 1 &
pid=$!

"$bin/loadgen" -base http://127.0.0.1:18423 -prep -config lanes_on \
	-scale 11 -seed 1 -duration 5s -warmup 2s \
	-stats-qps 50 -bfs-qps 20 -components-qps 5 -closed-workers 1 \
	-bc-qps 2 -bc-k 1 -bc-samples 64 -ingest-qps 5 -ingest-batch 128 \
	-out "$bin/BENCH_LOAD.smoke.json" -assert-cheap-p99-ms 1500
"$bin/loadgen" -check "$bin/BENCH_LOAD.smoke.json"
echo "load smoke passed"
