#!/usr/bin/env sh
# Reproducible kernel benchmark harness: runs cmd/bench with its fixed
# default seeds and writes BENCH_PR2.json at the repo root, so the perf
# trajectory of the betweenness kernels is comparable across PRs and
# machines. Pass cmd/bench flags through, e.g.:
#
#   scripts/bench.sh                    # scale-16 acceptance run
#   scripts/bench.sh -scale 14 -out -   # quicker, print to stdout
set -eu
cd "$(dirname "$0")/.."
exec go run ./cmd/bench "$@"
