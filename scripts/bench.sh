#!/usr/bin/env sh
# Reproducible memory-layout ablation harness: runs cmd/bench with the
# committed report's exact configuration (R-MAT scale 16, seed 1, 32
# sampled sources, GOMAXPROCS=4, k=1, best-of-3 reps) and refreshes
# BENCH_PR7.json at the repo root, printing the ablation table —
# baseline / reorder / reorder+compact / reorder+compact+arena / default —
# to stdout. Re-running on the same hardware reproduces the committed
# numbers; pass cmd/bench flags to override, e.g.:
#
#   scripts/bench.sh                    # scale-16 acceptance run
#   scripts/bench.sh -scale 14 -out -   # quicker, print JSON to stdout
#   scripts/bench.sh -k 0               # skip the slow k-betweenness rows
#
# Explicit flags repeat cmd/bench's defaults so the pinned configuration
# is visible here and stays fixed even if the tool's defaults move.
set -eu
cd "$(dirname "$0")/.."
exec go run ./cmd/bench \
	-scale 16 -samples 32 -seed 1 -procs 4 -k 1 -reps 3 \
	-reorder degree -out BENCH_PR7.json "$@"
