#!/usr/bin/env sh
# Reproducible benchmark harness, two parts:
#
# 1. Memory-layout ablation: runs cmd/bench with the committed report's
#    exact configuration (R-MAT scale 16, seed 1, 32 sampled sources,
#    GOMAXPROCS=4, k=1, best-of-3 reps) and refreshes BENCH_PR7.json at
#    the repo root, printing the ablation table — baseline / reorder /
#    reorder+compact / reorder+compact+arena / default. Pass cmd/bench
#    flags to override, e.g.:
#
#      scripts/bench.sh                    # full acceptance run
#      scripts/bench.sh -scale 14 -out -   # quicker, print JSON to stdout
#      scripts/bench.sh -k 0               # skip the slow k-betweenness rows
#
# 2. Mixed-workload SLO ablation: runs cmd/loadgen self-hosted at a
#    pinned small scale — QoS lanes off vs on under the same blend of
#    cheap reads, k-betweenness requests and streaming ingest — and
#    refreshes BENCH_LOAD.json, then schema-checks it so a harness
#    regression fails the run instead of committing a malformed report.
#
# 3. Approximate-BC ablation: one measured full exact run against the
#    adaptive (eps,delta)-guaranteed estimator at the committed
#    configuration (R-MAT scale 18, eps=0.01, delta=0.1), refreshing
#    BENCH_PR10.json and schema-checking it. The exact row is a single
#    full Brandes sweep — the better part of an hour at scale 18 on one
#    core — so part 3 runs last; drop the scale for a quick check:
#
#      scripts/bench.sh -approx-scale 12   # minutes instead of an hour
#
# Explicit flags repeat each tool's defaults so the pinned configurations
# are visible here and stay fixed even if the tools' defaults move.
set -eu
cd "$(dirname "$0")/.."

# -approx-scale N is this script's own flag (everything else passes
# through to part 1's cmd/bench invocation).
approx_scale=18
if [ "${1-}" = "-approx-scale" ]; then
	approx_scale="$2"
	shift 2
fi

go run ./cmd/bench \
	-scale 16 -samples 32 -seed 1 -procs 4 -k 1 -reps 3 \
	-reorder degree -out BENCH_PR7.json "$@"

go run ./cmd/loadgen \
	-scale 12 -seed 1 -duration 8s -warmup 2s -lanes ablate \
	-max-concurrent 2 -max-queued 32 -cheap-reserved 1 \
	-stats-qps 100 -bfs-qps 40 -components-qps 10 -closed-workers 2 \
	-bc-qps 4 -bc-k 1 -bc-samples 128 -ingest-qps 8 -ingest-batch 256 \
	-out BENCH_LOAD.json
go run ./cmd/loadgen -check BENCH_LOAD.json

go run ./cmd/bench \
	-approx -scale "$approx_scale" -eps 0.01 -delta 0.1 -seed 1 \
	-procs 4 -reps 3 -reorder degree -out BENCH_PR10.json
go run ./cmd/bench -check BENCH_PR10.json
