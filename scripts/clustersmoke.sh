#!/usr/bin/env sh
# CI cluster smoke (target: well under 60s): stand up the REAL binaries as
# a three-process topology — a durable leader worker, a follower
# replicating from it, and a router coordinating the shard — then prove
# the replication story end to end: ingest flows through the router to the
# leader, the follower bootstraps from the shipped snapshot and tails the
# WAL to the leader's head epoch, a SIGKILLed leader leaves the surviving
# topology serving (stale-allowed) reads from the follower, and the
# restarted leader recovers, accepts writes again, and the follower
# catches back up to the new head epoch.
set -eu
cd "$(dirname "$0")/.."

LEADER=http://127.0.0.1:18431
FOLLOWER=http://127.0.0.1:18432
ROUTER=http://127.0.0.1:18430

bin=$(mktemp -d)
cleanup() {
	kill "$leader_pid" 2>/dev/null || true
	kill "$follower_pid" 2>/dev/null || true
	kill "$router_pid" 2>/dev/null || true
	wait 2>/dev/null || true
	rm -rf "$bin"
}
trap cleanup EXIT INT TERM

go build -o "$bin/graphctd" ./cmd/graphctd

start_leader() {
	"$bin/graphctd" -addr 127.0.0.1:18431 -data-dir "$bin/leader-data" \
		-snapshot-every 64 -retain-epochs 4 &
	leader_pid=$!
}
start_leader
"$bin/graphctd" -addr 127.0.0.1:18432 \
	-follow "$LEADER" -follow-interval 25ms &
follower_pid=$!
"$bin/graphctd" -addr 127.0.0.1:18430 -mode router \
	-workers "$LEADER|$FOLLOWER" &
router_pid=$!

wait_ready() { # $1 = base URL
	i=0
	until curl -fsS "$1/readyz" >/dev/null 2>&1; do
		i=$((i + 1))
		[ "$i" -lt 100 ] || { echo "FAIL: $1 never became ready" >&2; exit 1; }
		sleep 0.1
	done
}
wait_ready "$LEADER"
wait_ready "$FOLLOWER"
wait_ready "$ROUTER"

# One deterministic ingest batch of 32 edges, as JSON, keyed by index.
batch() {
	i=$1
	printf '['
	j=0
	while [ "$j" -lt 32 ]; do
		[ "$j" -gt 0 ] && printf ','
		printf '{"u":%d,"v":%d,"time":%d}' \
			$(((i * 97 + j * 13) % 500)) $(((i * 53 + j * 29 + 1) % 500)) $((i * 100 + j))
		j=$((j + 1))
	done
	printf ']'
}

ingest() { # $1 = batch index; writes go through the router
	batch "$1" | curl -fsS -X POST -H 'Content-Type: application/json' \
		--data-binary @- "$ROUTER/graphs/g/ingest?batch_id=smoke-$1" >/dev/null
}

# epoch_of BASE: the epoch a daemon currently publishes for g.
epoch_of() {
	curl -fsS "$1/graphs" | sed -n 's/.*"name":"g","epoch":\([0-9]*\).*/\1/p'
}

# wait_caught_up: poll until the follower publishes the leader's epoch.
wait_caught_up() {
	want=$(epoch_of "$LEADER")
	i=0
	while :; do
		got=$(epoch_of "$FOLLOWER")
		[ "$got" = "$want" ] && break
		i=$((i + 1))
		[ "$i" -lt 100 ] || {
			echo "FAIL: follower at epoch ${got:-none}, leader at ${want}" >&2
			exit 1
		}
		sleep 0.1
	done
	echo "follower caught up to head epoch $want"
}

# Create the graph and stream batches through the router.
curl -fsS -X POST -H 'Content-Type: application/json' \
	-d '{"name":"g","format":"live","vertices":500}' "$ROUTER/graphs" >/dev/null
k=1
while [ "$k" -le 20 ]; do
	ingest "$k"
	k=$((k + 1))
done
# Force a publish so the head epoch covers everything ingested so far.
curl -fsS -X POST "$ROUTER/graphs/g/snapshot" >/dev/null
wait_caught_up

# Kill the follower's leader mid-stream: more batches are in flight when
# the SIGKILL lands, then writes start failing over to nothing (503) while
# reads keep flowing from the surviving follower.
ingest 21 &
inflight=$!
kill -9 "$leader_pid"
wait "$inflight" 2>/dev/null || true

code=$(curl -s -o /dev/null -w '%{http_code}' "$ROUTER/graphs/g/components?stale=allow")
[ "$code" = 200 ] || { echo "FAIL: stale-allowed read after leader death: HTTP $code" >&2; exit 1; }
served=$(curl -fsS -D - -o /dev/null "$ROUTER/graphs/g/components?stale=allow" | tr -d '\r' | sed -n 's/^X-Graphct-Worker: //Ip')
[ "$served" = "$FOLLOWER" ] || { echo "FAIL: surviving read served by ${served:-nobody}, want $FOLLOWER" >&2; exit 1; }
echo "leader killed; follower still serving reads"

# Restart the leader over its data directory: it must recover, take writes
# again, and the follower must catch up to the new head epoch.
start_leader
wait_ready "$LEADER"
k=22
while [ "$k" -le 26 ]; do
	ingest "$k"
	k=$((k + 1))
done
curl -fsS -X POST "$ROUTER/graphs/g/snapshot" >/dev/null
wait_caught_up

echo "cluster smoke passed"
