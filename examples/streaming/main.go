// Streaming and temporal analysis: the paper's Section V direction. The
// synthetic H1N1 stream is replayed week by week; the streaming substrate
// maintains clustering coefficients incrementally as mention edges arrive,
// and the temporal package tracks how the interaction graph and its most
// central actors evolve across the crisis weeks.
package main

import (
	"fmt"
	"sort"
	"strings"

	"graphct/internal/stream"
	"graphct/internal/temporal"
	"graphct/internal/tweets"
)

func main() {
	corpus := tweets.Generate(tweets.H1N1Corpus(0.1, 2009))
	sort.Slice(corpus, func(i, j int) bool { return corpus[i].Week < corpus[j].Week })

	// Build the handle universe up front so streamed edges have ids.
	ug := tweets.Build(corpus)
	st := stream.New(ug.Stats.Users)

	fmt.Println("replaying stream week by week:")
	week := -1
	for _, t := range corpus {
		if t.Week != week {
			if week >= 0 {
				report(st, week)
			}
			week = t.Week
		}
		author, _ := ug.Lookup(t.Author)
		for _, m := range tweets.Mentions(t.Text) {
			if target, ok := ug.Lookup(m); ok && target != author {
				st.Insert(stream.Update{U: author, V: target, Time: t.ID})
			}
		}
	}
	report(st, week)

	// Temporal snapshots: per-week graphs, top actors and their churn.
	fmt.Println("\nweekly snapshots (isolated windows):")
	snaps := temporal.Analyze(corpus, temporal.Options{TopK: 5, Samples: 128, Seed: 7})
	for _, row := range temporal.Growth(snaps) {
		fmt.Printf("  week %d: %6d tweets %6d users %6d interactions  LWCC %4.0f%%\n",
			row.Week, row.Tweets, row.Users, row.Interactions, 100*row.LWCCShare)
	}
	for i, tv := range temporal.Turnover(snaps) {
		fmt.Printf("  top-5 turnover week %d->%d: %.0f%%\n",
			snaps[i].Week, snaps[i+1].Week, 100*tv)
	}
	fmt.Println("  final week top actors:", strings.Join(snaps[len(snaps)-1].TopActors, ", "))
}

func report(st *stream.Stream, week int) {
	fmt.Printf("  after week %d: %7d edges, global clustering %.5f\n",
		week, st.NumEdges(), st.GlobalCoefficient())
}
