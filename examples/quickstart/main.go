// Quickstart: load a graph, estimate its diameter, find components,
// extract the largest, and rank its vertices by approximate betweenness
// centrality — the canonical GraphCT workflow.
package main

import (
	"fmt"
	"log"

	"graphct/internal/core"
	"graphct/internal/gen"
)

func main() {
	// Any *graph.Graph works; here a scale-12 R-MAT graph with the
	// paper's generator parameters stands in for a social network.
	g := gen.RMAT(gen.PaperRMAT(12, 42))
	fmt.Println("loaded:", g)

	tk := core.New(g, core.WithSeed(42))

	// GraphCT estimates the diameter at load time from 256 sampled BFS
	// runs; traversal kernels size their queues from it.
	d := tk.Diameter()
	fmt.Printf("diameter estimate: %d (longest sampled path %d)\n", d.Estimate, d.LongestPath)

	ds := tk.DegreeStats()
	fmt.Printf("degrees: mean %.2f variance %.2f max %d\n", ds.Mean, ds.Variance, ds.Max)

	census := tk.ComponentCensus()
	fmt.Printf("components: %d (largest %d vertices)\n", len(census), census[0].Size)

	// Work on the largest component, keeping the full graph recallable.
	tk.Save()
	if err := tk.ExtractComponent(1); err != nil {
		log.Fatal(err)
	}
	fmt.Println("largest component:", tk.Graph())

	// Approximate betweenness centrality from 256 sampled sources.
	res := tk.BetweennessApprox(256)
	fmt.Println("top 5 vertices by approximate betweenness centrality:")
	for i, v := range res.TopK(5) {
		fmt.Printf("%2d. vertex %6d  score %.1f\n", i+1, tk.OrigID(v), res.Scores[v])
	}

	// Back to the full graph.
	if err := tk.Restore(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("restored:", tk.Graph())
}
