// Massive-graph scaling demo: the paper's Figure 6 in miniature. Generates
// R-MAT graphs with the paper's parameters (A=0.55, B=C=0.10, D=0.25, edge
// factor 16) at growing scales and times 256-source approximate
// betweenness centrality on each, printing the time-vs-size series. Raise
// -maxscale toward 29 on a machine with the memory for it.
package main

import (
	"flag"
	"fmt"
	"time"

	"graphct/internal/bc"
	"graphct/internal/gen"
)

func main() {
	minScale := flag.Int("minscale", 10, "smallest R-MAT scale")
	maxScale := flag.Int("maxscale", 14, "largest R-MAT scale")
	sources := flag.Int("sources", 256, "sampled BC sources (paper: 256)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	fmt.Printf("%8s %10s %12s %14s %12s %14s\n", "scale", "vertices", "edges", "V*E", "gen", "bc-256")
	for scale := *minScale; scale <= *maxScale; scale++ {
		start := time.Now()
		graph := gen.RMAT(gen.PaperRMAT(scale, *seed))
		genTime := time.Since(start)

		start = time.Now()
		bc.Approx(graph, *sources, *seed)
		bcTime := time.Since(start)

		ve := float64(graph.NumVertices()) * float64(graph.NumEdges())
		fmt.Printf("%8d %10d %12d %14.3e %12v %14v\n",
			scale, graph.NumVertices(), graph.NumEdges(), ve, genTime.Round(time.Millisecond), bcTime.Round(time.Millisecond))
	}
}
