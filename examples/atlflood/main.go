// Conversation detection on the #atlflood corpus: the paper's question "is
// Twitter only a one-to-many broadcast medium, or are many-to-many
// conversations hidden in the data?" Reciprocal filtering shrinks the
// broadcast-dominated graph by orders of magnitude, and centrality ranking
// inside the remnant surfaces the actual conversations.
package main

import (
	"fmt"

	"graphct/internal/bc"
	"graphct/internal/cc"
	"graphct/internal/tweets"
)

func main() {
	// An example conversation thread, Figure 1 style.
	fmt.Println("example conversation:")
	for _, t := range tweets.ExampleConversation("atlflood") {
		fmt.Printf("  @%s: %s\n", t.Author, t.Text)
	}
	fmt.Println()

	corpus := tweets.Generate(tweets.AtlFloodCorpus(1.0, 20090920))
	harvest := tweets.FilterKeyword(corpus, []string{"atlflood"})
	ug := tweets.Build(harvest)

	active, _ := ug.Graph.DropIsolated()
	lwcc, _ := cc.Largest(ug.Graph)
	fmt.Printf("original graph: %d active users\n", active.NumVertices())
	fmt.Printf("largest component: %d users\n", lwcc.NumVertices())

	// Keep only pairs of users who referred to one another — the
	// subcommunity filter of Figure 3.
	core := ug.Graph.ReciprocalCore()
	conversations, orig := core.DropIsolated()
	fmt.Printf("subcommunity (reciprocal mentions): %d users, %d links — a %.0fx reduction\n",
		conversations.NumVertices(), conversations.NumEdges(),
		float64(active.NumVertices())/float64(conversations.NumVertices()))

	comps := cc.Components(conversations)
	fmt.Printf("conversation clusters: %d\n", comps.Count)
	for i, c := range comps.Census() {
		if i == 5 {
			break
		}
		fmt.Printf("  cluster %d: %d participants\n", i+1, c.Size)
	}

	// Rank conversation participants: exact BC is cheap on the remnant.
	res := bc.Exact(conversations)
	fmt.Println("most central conversation participants:")
	for i, v := range res.TopK(5) {
		fmt.Printf("%2d. @%-20s %8.1f\n", i+1, ug.Names[orig[v]], res.Scores[v])
	}
}
