// H1N1 crisis analysis: the paper's Section III walk-through on the
// synthetic influenza corpus. Builds the mention graph from raw tweets,
// reports Table III-style characteristics, checks the power-law degree
// shape, and ranks actors by betweenness centrality so an analyst can
// focus on the influential sources rather than tens of thousands of
// interactions.
package main

import (
	"fmt"

	"graphct/internal/bc"
	"graphct/internal/cc"
	"graphct/internal/stats"
	"graphct/internal/tweets"
)

func main() {
	// Harvest: all tweets matching the crisis keywords (the generator
	// also emits them; in a live pipeline this would be the stream
	// filter).
	corpus := tweets.Generate(tweets.H1N1Corpus(0.25, 2009))
	harvest := tweets.FilterKeyword(corpus, []string{"flu", "h1n1"})
	clean := tweets.FilterSpam(harvest, 0)
	fmt.Printf("harvested %d on-topic tweets (%d after spam removal)\n", len(harvest), len(clean))
	harvest = clean

	// User-interaction graph: an edge per @mention, duplicates dropped.
	ug := tweets.Build(harvest)
	s := ug.Stats
	fmt.Printf("users %d, unique interactions %d, tweets with mentions %d, self references %d\n",
		s.Users, s.UniqueInteractions, s.TweetsWithMentions, s.SelfReferences)

	// Largest weakly connected component (Table III's LWCC rows).
	lwcc, orig := cc.Largest(ug.Graph)
	fmt.Printf("LWCC: %d users, %d interactions\n", lwcc.NumVertices(), lwcc.NumArcs())

	// Degree distribution: heavy tail dominated by broadcast hubs.
	und := lwcc.Undirected()
	alpha, used := stats.PowerLawAlpha(und, 4)
	fmt.Printf("power-law fit alpha %.2f over %d vertices; top-20%% hold %.0f%% of links\n",
		alpha, used, 100*stats.TopShare(und, 0.2))

	// Rank actors by sampled betweenness centrality (the paper's
	// analyst workflow: find the information brokers).
	res := bc.Approx(und, 256, 7)
	fmt.Println("top 10 actors by betweenness centrality:")
	for i, v := range res.TopK(10) {
		fmt.Printf("%2d. @%-28s %12.1f\n", i+1, ug.Names[orig[v]], res.Scores[v])
	}

	// The most-mentioned handles — media/government analogues.
	fmt.Println("most-mentioned handles:", ug.TopMentioned(5))
}
