#!/bin/sh
# Demonstrates graphctd's request coalescing and result cache: 16
# parallel clients fire the same expensive k-centrality request; the
# server runs the kernel once and every client shares the result. A
# follow-up call hits the cache. Run from the repository root.
set -eu

ADDR="127.0.0.1:8423"
BIN="$(mktemp -d)/graphctd"

go build -o "$BIN" ./cmd/graphctd
"$BIN" -addr "$ADDR" -graph sample=dimacs:testdata/sample.dimacs &
DAEMON=$!
trap 'kill $DAEMON 2>/dev/null || true' EXIT
sleep 1

echo "== 16 identical concurrent requests (xargs -P 16) =="
seq 16 | xargs -P 16 -I{} \
  curl -s -o /dev/null -w '%{http_code} source=%header{x-graphct-source}\n' \
  "http://$ADDR/graphs/sample/kcentrality?k=2&samples=6" | sort | uniq -c

echo "== follow-up call =="
curl -s -o /dev/null -w 'source=%header{x-graphct-source}\n' \
  "http://$ADDR/graphs/sample/kcentrality?k=2&samples=6"

echo "== metrics: kernel_runs.kcentrality should be 1 =="
curl -s "http://$ADDR/metrics"
echo
